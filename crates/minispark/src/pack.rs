//! `cdipack` primitives — the binary, columnar, length-prefixed encoding
//! shared by the serving wire protocol, service snapshots, and table
//! persistence.
//!
//! The format is built from four primitives, all little-endian:
//!
//! - **varint** — LEB128 unsigned 64-bit integers (7 payload bits per byte,
//!   high bit = continuation; at most [`MAX_VARINT_BYTES`] bytes);
//! - **zigzag** — signed 64-bit integers mapped to unsigned
//!   (`0, -1, 1, -2, …` → `0, 1, 2, 3, …`) then varint-encoded, so small
//!   magnitudes of either sign stay short — the representation delta-encoded
//!   timestamps ride on;
//! - **f64 bits** — floats as their raw 8 IEEE-754 bytes, so every value
//!   (including NaN payloads and signed zeros) round-trips bit-exactly;
//! - **string** — varint byte length followed by UTF-8 bytes.
//!
//! [`PackWriter`] appends primitives to a growable buffer; [`PackReader`] is
//! a bounds-checked cursor over a byte slice. Every read is total: corrupt,
//! truncated, or over-length input surfaces as a typed [`PackError`], never
//! a panic — the reader is on the untrusted side of a network socket.
//!
//! This module is deliberately cast-free: all width changes go through
//! `to_le_bytes`/`from_le_bytes` and `try_from`, so the stability-lint R4
//! rule (no raw `as` numeric casts) holds over the codec as well as the
//! metric math.

use std::fmt;

use crate::error::SparkError;

/// Maximum encoded size of one varint (10 × 7 bits ≥ 64 bits).
pub const MAX_VARINT_BYTES: usize = 10;

/// Typed decode failure. Every variant names what the cursor was trying to
/// read so wire errors are actionable without a hex dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// The buffer ended before the requested bytes.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// A varint ran past [`MAX_VARINT_BYTES`] or overflowed 64 bits.
    VarintOverflow,
    /// A magic/version preamble did not match.
    BadMagic {
        /// What the decoder expected.
        expected: &'static [u8],
        /// What the buffer held.
        found: Vec<u8>,
    },
    /// An enum tag byte was outside the known range.
    BadTag {
        /// Which tag space the byte came from.
        context: &'static str,
        /// The unknown byte.
        tag: u8,
    },
    /// A declared length exceeds what the buffer (or a caller cap) allows —
    /// the over-length-frame guard.
    TooLarge {
        /// The declared length.
        declared: u64,
        /// The applicable limit.
        limit: u64,
    },
    /// String bytes were not valid UTF-8.
    BadUtf8,
    /// A structural invariant of the format was violated.
    Malformed(String),
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::Truncated { need, have } => {
                write!(f, "truncated input: needed {need} bytes, {have} remain")
            }
            PackError::VarintOverflow => write!(f, "varint overflows 64 bits"),
            PackError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:?}, found {found:?}")
            }
            PackError::BadTag { context, tag } => {
                write!(f, "unknown {context} tag 0x{tag:02x}")
            }
            PackError::TooLarge { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            PackError::BadUtf8 => write!(f, "string bytes are not valid UTF-8"),
            PackError::Malformed(m) => write!(f, "malformed cdipack data: {m}"),
        }
    }
}

impl std::error::Error for PackError {}

impl From<PackError> for SparkError {
    fn from(e: PackError) -> Self {
        SparkError::Serde(e.to_string())
    }
}

/// Map a signed integer onto the zigzag unsigned line (`-1 → 1`, `1 → 2`).
pub fn zigzag_encode(n: i64) -> u64 {
    // (n << 1) ^ (n >> 63): arithmetic shift smears the sign bit, the xor
    // folds negatives onto odd codes. Wrapping shl keeps i64::MIN total.
    let z = n.wrapping_shl(1) ^ (n >> 63);
    u64::from_le_bytes(z.to_le_bytes())
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(z: u64) -> i64 {
    let unsigned = (z >> 1) ^ 0u64.wrapping_sub(z & 1);
    i64::from_le_bytes(unsigned.to_le_bytes())
}

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct PackWriter {
    buf: Vec<u8>,
}

impl PackWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        PackWriter { buf: Vec::new() }
    }

    /// Writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        PackWriter { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// View of the encoded bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one raw byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Append raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            // Low 7 bits with the continuation bit set; `to_le_bytes()[0]`
            // is the cast-free low-byte view.
            self.buf.push(v.to_le_bytes()[0] | 0x80);
            v >>= 7;
        }
        self.buf.push(v.to_le_bytes()[0]);
    }

    /// Append a zigzag-varint signed integer.
    pub fn put_zigzag(&mut self, n: i64) {
        self.put_varint(zigzag_encode(n));
    }

    /// Append a float as its raw IEEE-754 bits (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varint(len_u64(s.len()));
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Widen a buffer length to `u64` without a cast (`usize` ≤ 64 bits on all
/// supported targets; a failure would need a >2^64-byte buffer).
fn len_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Bounds-checked decode cursor over a byte slice.
///
/// All reads return [`PackError`] on any malformed input; the cursor never
/// advances past the end of the buffer.
#[derive(Debug, Clone)]
pub struct PackReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PackReader<'a> {
    /// Cursor at the start of a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        PackReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless the cursor consumed the whole buffer — rejects frames
    /// with trailing garbage.
    pub fn finish(&self) -> Result<(), PackError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(PackError::Malformed(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )))
        }
    }

    /// Read `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], PackError> {
        if self.remaining() < n {
            return Err(PackError::Truncated { need: n, have: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, PackError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Read a LEB128 varint.
    pub fn take_varint(&mut self) -> Result<u64, PackError> {
        let mut out: u64 = 0;
        let mut shift: u32 = 0;
        for _ in 0..MAX_VARINT_BYTES {
            let b = self.take_u8()?;
            let low = u64::from(b & 0x7f);
            // The 10th byte may only contribute the single remaining bit.
            if shift == 63 && low > 1 {
                return Err(PackError::VarintOverflow);
            }
            out |= low << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift > 63 {
                return Err(PackError::VarintOverflow);
            }
        }
        Err(PackError::VarintOverflow)
    }

    /// Read a zigzag-varint signed integer.
    pub fn take_zigzag(&mut self) -> Result<i64, PackError> {
        Ok(zigzag_decode(self.take_varint()?))
    }

    /// Read an IEEE-754 bit-exact float.
    pub fn take_f64(&mut self) -> Result<f64, PackError> {
        let bytes = self.take_bytes(8)?;
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| PackError::Truncated { need: 8, have: bytes.len() })?;
        Ok(f64::from_bits(u64::from_le_bytes(arr)))
    }

    /// Read a varint and validate it as an in-buffer length or count: it
    /// must not exceed the remaining bytes (each counted item occupies at
    /// least one byte), which rejects over-length declarations up front
    /// instead of letting them drive huge allocations.
    pub fn take_len(&mut self) -> Result<usize, PackError> {
        let declared = self.take_varint()?;
        let limit = len_u64(self.remaining());
        if declared > limit {
            return Err(PackError::TooLarge { declared, limit });
        }
        usize::try_from(declared)
            .map_err(|_| PackError::TooLarge { declared, limit: len_u64(usize::MAX) })
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, PackError> {
        let n = self.take_len()?;
        let bytes = self.take_bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PackError::BadUtf8)
    }

    /// Consume and verify a magic/version preamble.
    pub fn expect_magic(&mut self, expected: &'static [u8]) -> Result<(), PackError> {
        let have = self.remaining().min(expected.len());
        if self.remaining() < expected.len() || &self.buf[self.pos..self.pos + have] != expected {
            return Err(PackError::BadMagic {
                expected,
                found: self.buf[self.pos..self.pos + have].to_vec(),
            });
        }
        self.pos += expected.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::from(u32::MAX), u64::MAX] {
            let mut w = PackWriter::new();
            w.put_varint(v);
            let mut r = PackReader::new(w.as_slice());
            assert_eq!(r.take_varint().unwrap(), v, "value {v}");
            assert!(r.is_done());
        }
    }

    #[test]
    fn varint_sizes_match_leb128() {
        let mut w = PackWriter::new();
        w.put_varint(127);
        assert_eq!(w.len(), 1);
        let mut w = PackWriter::new();
        w.put_varint(128);
        assert_eq!(w.len(), 2);
        let mut w = PackWriter::new();
        w.put_varint(u64::MAX);
        assert_eq!(w.len(), MAX_VARINT_BYTES);
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for n in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -1_000_000, 1_000_000] {
            assert_eq!(zigzag_decode(zigzag_encode(n)), n, "value {n}");
            let mut w = PackWriter::new();
            w.put_zigzag(n);
            let mut r = PackReader::new(w.as_slice());
            assert_eq!(r.take_zigzag().unwrap(), n);
        }
        // Small magnitudes stay short regardless of sign.
        let mut w = PackWriter::new();
        w.put_zigzag(-3);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn f64_bits_exact_including_nan_and_negzero() {
        for v in [0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, 1e300] {
            let mut w = PackWriter::new();
            w.put_f64(v);
            let mut r = PackReader::new(w.as_slice());
            let back = r.take_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() {
        let mut w = PackWriter::new();
        w.put_str("héllo\n\"world\"");
        w.put_str("");
        let mut r = PackReader::new(w.as_slice());
        assert_eq!(r.take_str().unwrap(), "héllo\n\"world\"");
        assert_eq!(r.take_str().unwrap(), "");
        assert!(r.finish().is_ok());

        let bad = [1u8, 0xff];
        let mut r = PackReader::new(&bad);
        assert_eq!(r.take_str(), Err(PackError::BadUtf8));
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut r = PackReader::new(&[0x80]); // continuation bit, then EOF
        assert!(matches!(r.take_varint(), Err(PackError::Truncated { .. })));
        let mut r = PackReader::new(&[1, 2, 3]);
        assert!(matches!(r.take_f64(), Err(PackError::Truncated { need: 8, have: 3 })));
        let mut r = PackReader::new(&[]);
        assert!(matches!(r.take_u8(), Err(PackError::Truncated { .. })));
    }

    #[test]
    fn overlong_varint_is_overflow_not_panic() {
        // 11 continuation bytes: more than any 64-bit value needs.
        let bytes = [0xffu8; 11];
        let mut r = PackReader::new(&bytes);
        assert_eq!(r.take_varint(), Err(PackError::VarintOverflow));
        // 10 bytes whose 10th contributes more than the last bit.
        let mut bytes = [0x80u8; 10];
        bytes[9] = 0x02;
        let mut r = PackReader::new(&bytes);
        assert_eq!(r.take_varint(), Err(PackError::VarintOverflow));
    }

    #[test]
    fn over_length_declaration_rejected_before_allocation() {
        // Declares a 2^40-byte string in a 3-byte buffer.
        let mut w = PackWriter::new();
        w.put_varint(1 << 40);
        let bytes = w.into_bytes();
        let mut r = PackReader::new(&bytes);
        assert!(matches!(r.take_str(), Err(PackError::TooLarge { .. })));
    }

    #[test]
    fn magic_mismatch_and_trailing_bytes() {
        let mut w = PackWriter::new();
        w.put_bytes(b"MSP1");
        w.put_u8(7);
        let bytes = w.into_bytes();
        let mut r = PackReader::new(&bytes);
        assert!(r.expect_magic(b"XXXX").is_err());
        assert!(r.expect_magic(b"MSP1").is_ok());
        assert!(matches!(r.finish(), Err(PackError::Malformed(_))));
        assert_eq!(r.take_u8().unwrap(), 7);
        assert!(r.finish().is_ok());
    }
}
