//! Shared, immutable partitions — the engine's zero-copy currency.
//!
//! Every plan node hands out a [`Partition<T>`]: an `Arc<Vec<T>>` wrapper.
//! Materialized data (shuffle buckets, sort output, cache contents, source
//! chunks) is built once and then *shared* — a downstream consumer clones
//! the `Arc`, not the rows. The deep copy happens only at the moment a
//! consumer genuinely needs owned rows while the partition is still shared
//! ([`Partition::into_vec`]), and every such copy is counted in
//! [`ExecMetrics::rows_cloned`](crate::exec::ExecMetrics) so regressions on
//! hot paths show up as a metric, not a profile.

use std::ops::Deref;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::exec::ExecMetrics;

/// An immutable, reference-counted partition of rows.
///
/// Cloning a `Partition` is an `Arc` refcount bump — O(1), never a row
/// copy. Use [`Partition::into_vec`] to take ownership of the rows; it
/// moves them out when this handle is the only owner and clones (with
/// metric accounting) otherwise.
pub struct Partition<T> {
    rows: Arc<Vec<T>>,
}

impl<T> Clone for Partition<T> {
    fn clone(&self) -> Self {
        Partition { rows: Arc::clone(&self.rows) }
    }
}

impl<T> std::fmt::Debug for Partition<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partition")
            .field("rows", &self.rows.len())
            .field("shared", &(Arc::strong_count(&self.rows) > 1))
            .finish()
    }
}

impl<T> Deref for Partition<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        &self.rows
    }
}

impl<T> Partition<T> {
    /// Wrap freshly materialized rows.
    pub fn new(rows: Vec<T>) -> Self {
        Partition { rows: Arc::new(rows) }
    }

    /// A partition with no rows.
    pub fn empty() -> Self {
        Partition { rows: Arc::new(Vec::new()) }
    }
}

impl<T: Clone> Partition<T> {
    /// Take ownership of the rows.
    ///
    /// If this handle is the sole owner (the common case for data flowing
    /// straight through a stage), the rows are moved out for free. If the
    /// partition is shared — pinned in a cache, a shuffle, or another
    /// consumer — the rows are cloned, and the copy is recorded in
    /// `metrics.rows_cloned` / `metrics.bytes_cloned`.
    pub fn into_vec(self, metrics: &ExecMetrics) -> Vec<T> {
        match Arc::try_unwrap(self.rows) {
            Ok(rows) => rows,
            Err(shared) => {
                let n = shared.len() as u64;
                // ordering: independent statistic counter, never a synchronization point
                metrics.rows_cloned.fetch_add(n, Ordering::Relaxed);
                metrics
                    .bytes_cloned
                    // ordering: independent statistic counter, never a synchronization point
                    .fetch_add(n * std::mem::size_of::<T>() as u64, Ordering::Relaxed);
                shared.as_ref().clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_owner_moves_without_accounting() {
        let m = ExecMetrics::default();
        let p = Partition::new(vec![1, 2, 3]);
        assert_eq!(p.into_vec(&m), vec![1, 2, 3]);
        assert_eq!(m.snapshot().rows_cloned, 0);
        assert_eq!(m.snapshot().bytes_cloned, 0);
    }

    #[test]
    fn shared_owner_clones_and_counts() {
        let m = ExecMetrics::default();
        let p = Partition::new(vec![1u64, 2, 3]);
        let held = p.clone();
        assert_eq!(p.into_vec(&m), vec![1, 2, 3]);
        assert_eq!(held.len(), 3, "the original handle still reads the rows");
        let s = m.snapshot();
        assert_eq!(s.rows_cloned, 3);
        assert_eq!(s.bytes_cloned, 3 * 8);
    }

    #[test]
    fn clone_is_not_a_row_copy() {
        let p = Partition::new((0..100).collect::<Vec<i32>>());
        let q = p.clone();
        assert!(std::ptr::eq(&p[0], &q[0]), "clones alias the same rows");
    }

    #[test]
    fn empty_and_deref() {
        let p = Partition::<u8>::empty();
        assert!(p.is_empty());
        let p = Partition::new(vec![5, 6]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.iter().sum::<i32>(), 11);
    }
}
