//! Execution context: scoped parallel execution over partitions, with
//! engine metrics.
//!
//! minispark executes one *stage* (a chain of narrow transformations ending
//! at a shuffle or an action) as a set of independent partition tasks. Tasks
//! are pulled from a shared atomic cursor by a fixed pool of scoped worker
//! threads — simple work stealing with zero allocation per task.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Engine counters, updated by the dataset layer during execution.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Partition tasks executed.
    pub tasks: AtomicU64,
    /// Records moved through shuffles.
    pub shuffled_records: AtomicU64,
    /// Number of shuffle materializations.
    pub shuffles: AtomicU64,
}

impl ExecMetrics {
    /// Snapshot the counters as plain numbers `(tasks, shuffled, shuffles)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.tasks.load(Ordering::Relaxed),
            self.shuffled_records.load(Ordering::Relaxed),
            self.shuffles.load(Ordering::Relaxed),
        )
    }
}

/// Execution context shared by every plan in a job.
#[derive(Debug)]
pub struct ExecContext {
    threads: usize,
    /// Engine metrics for the lifetime of this context.
    pub metrics: ExecMetrics,
}

impl ExecContext {
    /// Context with an explicit worker-thread count (`>= 1`).
    pub fn with_threads(threads: usize) -> Self {
        ExecContext { threads: threads.max(1), metrics: ExecMetrics::default() }
    }

    /// Context sized to the machine's available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::with_threads(threads)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(i)` for `i in 0..n` in parallel and collect results in order.
    ///
    /// This is the engine's only parallel primitive; stages and shuffles are
    /// built on it. `f` runs on scoped crossbeam threads, so it may borrow
    /// from the caller's stack.
    pub fn parallel_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        self.metrics.tasks.fetch_add(n as u64, Ordering::Relaxed);
        if self.threads == 1 || n == 1 {
            return (0..n).map(&f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        // Each worker claims indices from the shared cursor and writes its
        // result into a disjoint slot; the unsafe-free way to share the
        // slots is to hand each worker the indices it claimed and merge
        // after the scope.
        let workers = self.threads.min(n);
        let results: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let f = &f;
                    scope.spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        })
        .expect("execution scope panicked");
        for (i, r) in results.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots.into_iter().map(|s| s.expect("every index was claimed")).collect()
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_indexed_preserves_order() {
        let ctx = ExecContext::with_threads(4);
        let out = ctx.parallel_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let ctx = ExecContext::with_threads(1);
        assert_eq!(ctx.threads(), 1);
        let out = ctx.parallel_indexed(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_tasks() {
        let ctx = ExecContext::with_threads(4);
        let out: Vec<usize> = ctx.parallel_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn borrows_from_stack() {
        let data = [10, 20, 30];
        let ctx = ExecContext::with_threads(2);
        let out = ctx.parallel_indexed(data.len(), |i| data[i] * 2);
        assert_eq!(out, vec![20, 40, 60]);
    }

    #[test]
    fn metrics_count_tasks() {
        let ctx = ExecContext::with_threads(2);
        ctx.parallel_indexed(7, |i| i);
        ctx.parallel_indexed(3, |i| i);
        let (tasks, _, _) = ctx.metrics.snapshot();
        assert_eq!(tasks, 10);
    }

    #[test]
    fn thread_count_clamped_to_one() {
        let ctx = ExecContext::with_threads(0);
        assert_eq!(ctx.threads(), 1);
    }
}
