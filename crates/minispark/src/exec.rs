//! Execution context: scoped parallel execution over partitions, with
//! panic isolation, bounded per-task retries, and engine metrics.
//!
//! minispark executes one *stage* (a chain of narrow transformations ending
//! at a shuffle or an action) as a set of independent partition tasks. Tasks
//! are pulled from a shared atomic cursor by a fixed pool of scoped worker
//! threads — simple work stealing with zero allocation per task.
//!
//! Fault tolerance mirrors Spark's task model: a panicking task is caught
//! with [`std::panic::catch_unwind`] and re-attempted up to the context's
//! [`RetryPolicy`]; a task that exhausts its attempts fails the *stage* with
//! a structured [`TaskError`] instead of tearing down the process, and the
//! remaining workers stop claiming new tasks. Other stages — and the caller
//! — survive.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Engine counters, updated by the dataset layer during execution.
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Partition tasks handed to the worker pool (counted at submission).
    pub scheduled_tasks: AtomicU64,
    /// Partition tasks that ran to completion (a retried task counts once,
    /// on its successful attempt).
    pub completed_tasks: AtomicU64,
    /// Tasks that exhausted their retry budget and failed their stage.
    pub failed_tasks: AtomicU64,
    /// Re-attempts after a caught panic (a task that panics twice and then
    /// succeeds contributes 2).
    pub retried_tasks: AtomicU64,
    /// Records moved through shuffles.
    pub shuffled_records: AtomicU64,
    /// Number of shuffle materializations.
    pub shuffles: AtomicU64,
    /// Rows deep-copied out of a *shared* partition (cache, shuffle, or
    /// source) because a consumer needed ownership. Zero-copy plans keep
    /// this at zero on re-reads; see [`Partition::into_vec`](crate::Partition::into_vec).
    pub rows_cloned: AtomicU64,
    /// Approximate payload bytes behind `rows_cloned`, computed from the
    /// static element size (heap payloads of `String`-like rows are not
    /// followed).
    pub bytes_cloned: AtomicU64,
}

/// A plain-number copy of [`ExecMetrics`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Tasks handed to the worker pool.
    pub scheduled_tasks: u64,
    /// Tasks that ran to completion.
    pub completed_tasks: u64,
    /// Tasks that exhausted retries and failed their stage.
    pub failed_tasks: u64,
    /// Re-attempts after caught panics.
    pub retried_tasks: u64,
    /// Records moved through shuffles.
    pub shuffled_records: u64,
    /// Shuffle materializations.
    pub shuffles: u64,
    /// Rows deep-copied out of shared partitions.
    pub rows_cloned: u64,
    /// Approximate bytes behind `rows_cloned`.
    pub bytes_cloned: u64,
}

impl ExecMetrics {
    /// Snapshot the counters as plain numbers.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            // ordering: independent statistic counter, never a synchronization point
            scheduled_tasks: self.scheduled_tasks.load(Ordering::Relaxed),
            // ordering: independent statistic counter, never a synchronization point
            completed_tasks: self.completed_tasks.load(Ordering::Relaxed),
            // ordering: independent statistic counter, never a synchronization point
            failed_tasks: self.failed_tasks.load(Ordering::Relaxed),
            // ordering: independent statistic counter, never a synchronization point
            retried_tasks: self.retried_tasks.load(Ordering::Relaxed),
            // ordering: independent statistic counter, never a synchronization point
            shuffled_records: self.shuffled_records.load(Ordering::Relaxed),
            // ordering: independent statistic counter, never a synchronization point
            shuffles: self.shuffles.load(Ordering::Relaxed),
            // ordering: independent statistic counter, never a synchronization point
            rows_cloned: self.rows_cloned.load(Ordering::Relaxed),
            // ordering: independent statistic counter, never a synchronization point
            bytes_cloned: self.bytes_cloned.load(Ordering::Relaxed),
        }
    }
}

/// A partition task that panicked on every allowed attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Index of the failing partition task.
    pub partition: usize,
    /// Attempts consumed (1 = no retries were allowed or needed).
    pub attempts: u32,
    /// Stringified panic payload of the final attempt.
    pub payload: String,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task for partition {} panicked after {} attempt(s): {}",
            self.partition, self.attempts, self.payload
        )
    }
}

impl std::error::Error for TaskError {}

/// Convert a panic payload into a displayable string.
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Bounded per-task retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per task, including the first (`>= 1`).
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// Policy with `max_attempts` total attempts per task (clamped to 1).
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts: max_attempts.max(1) }
    }
}

impl Default for RetryPolicy {
    /// One attempt: fail fast, no retries.
    fn default() -> Self {
        RetryPolicy { max_attempts: 1 }
    }
}

/// Hook invoked on every retry, with the error of the failed attempt.
type RetryHook = Arc<dyn Fn(&TaskError) + Send + Sync>;

/// Execution context shared by every plan in a job.
pub struct ExecContext {
    threads: usize,
    retry: RetryPolicy,
    on_retry: Option<RetryHook>,
    /// Engine metrics for the lifetime of this context.
    pub metrics: ExecMetrics,
}

impl fmt::Debug for ExecContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecContext")
            .field("threads", &self.threads)
            .field("retry", &self.retry)
            .field("on_retry", &self.on_retry.as_ref().map(|_| "<hook>"))
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl ExecContext {
    /// Context with an explicit worker-thread count (`>= 1`).
    pub fn with_threads(threads: usize) -> Self {
        ExecContext {
            threads: threads.max(1),
            retry: RetryPolicy::default(),
            on_retry: None,
            metrics: ExecMetrics::default(),
        }
    }

    /// Context sized to the machine's available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::with_threads(threads)
    }

    /// Set the per-task retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Install a hook invoked on every retry (builder style). The hook runs
    /// on the worker thread, after the attempt's panic has been caught.
    pub fn with_on_retry(mut self, hook: impl Fn(&TaskError) + Send + Sync + 'static) -> Self {
        self.on_retry = Some(Arc::new(hook));
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-task retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Run one task with panic isolation and bounded retries.
    fn run_task<R>(&self, i: usize, f: &(impl Fn(usize) -> R + Sync)) -> Result<R, TaskError> {
        let mut attempt = 1u32;
        loop {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(r) => {
                    // ordering: independent statistic counter, never a synchronization point
                    self.metrics.completed_tasks.fetch_add(1, Ordering::Relaxed);
                    return Ok(r);
                }
                Err(payload) => {
                    let err = TaskError {
                        partition: i,
                        attempts: attempt,
                        payload: payload_string(payload),
                    };
                    if attempt < self.retry.max_attempts {
                        // ordering: independent statistic counter, never a synchronization point
                        self.metrics.retried_tasks.fetch_add(1, Ordering::Relaxed);
                        if let Some(hook) = &self.on_retry {
                            hook(&err);
                        }
                        attempt += 1;
                    } else {
                        // ordering: independent statistic counter, never a synchronization point
                        self.metrics.failed_tasks.fetch_add(1, Ordering::Relaxed);
                        return Err(err);
                    }
                }
            }
        }
    }

    /// Run `f(i)` for `i in 0..n` in parallel and collect results in order,
    /// isolating panics: a task that panics is retried per the context's
    /// [`RetryPolicy`], and a task that exhausts its attempts fails the
    /// stage with a [`TaskError`] while the process — and every other
    /// stage — survives. On failure the remaining workers stop claiming
    /// tasks (already-running tasks finish).
    ///
    /// This is the engine's parallel primitive; stages and shuffles are
    /// built on it. `f` runs on scoped threads, so it may borrow from the
    /// caller's stack.
    pub fn try_parallel_indexed<R, F>(&self, n: usize, f: F) -> Result<Vec<R>, TaskError>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        if n == 0 {
            return Ok(Vec::new());
        }
        // ordering: independent statistic counter, never a synchronization point
        self.metrics.scheduled_tasks.fetch_add(n as u64, Ordering::Relaxed);
        if self.threads == 1 || n == 1 {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(self.run_task(i, &f)?);
            }
            return Ok(out);
        }
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        // Each worker claims a *chunk* of indices from the shared cursor per
        // contended fetch_add (one atomic for several tasks), runs them, and
        // keeps results locally; results are merged into ordered slots after
        // the scope. The chunk is sized so every worker still gets several
        // claims — load balance survives a skewed tail. A terminal task
        // failure flips `failed` so siblings drain.
        let workers = self.threads.min(n);
        let chunk = (n / (workers * 4)).max(1);
        let results: Vec<Result<Vec<(usize, R)>, TaskError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let failed = &failed;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        'claims: loop {
                            // ordering: advisory early-exit flag; a stale read only delays draining
                            if failed.load(Ordering::Relaxed) {
                                break;
                            }
                            // ordering: the RMW itself hands out disjoint chunks; no other memory rides on it
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            for i in start..(start + chunk).min(n) {
                                // ordering: advisory early-exit flag; a stale read only delays draining
                                if failed.load(Ordering::Relaxed) {
                                    break 'claims;
                                }
                                match self.run_task(i, f) {
                                    Ok(r) => local.push((i, r)),
                                    Err(e) => {
                                        // ordering: advisory flag; the scope join is the real synchronization
                                        failed.store(true, Ordering::Relaxed);
                                        return Err(e);
                                    }
                                }
                            }
                        }
                        Ok(local)
                    })
                })
                .collect();
            // Workers cannot panic: every user closure runs under
            // catch_unwind inside run_task.
            handles.into_iter().map(|h| h.join().expect("worker survived")).collect()
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut first_err: Option<TaskError> = None;
        for worker in results {
            match worker {
                Ok(local) => {
                    for (i, r) in local {
                        slots[i] = Some(r);
                    }
                }
                Err(e) => {
                    // Keep the error of the lowest partition for determinism.
                    match &first_err {
                        Some(prev) if prev.partition <= e.partition => {}
                        _ => first_err = Some(e),
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every index was claimed"))
            .collect())
    }

    /// Infallible wrapper over [`ExecContext::try_parallel_indexed`] for
    /// callers that treat a stage failure as a bug: panics on [`TaskError`]
    /// (after the per-task retry budget, on the *calling* thread).
    pub fn parallel_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        match self.try_parallel_indexed(n, f) {
            Ok(out) => out,
            Err(e) => panic!("stage failed: {e}"),
        }
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Silence the default panic hook's backtrace spam for tests that
    /// deliberately panic inside tasks.
    fn quiet_panics() {
        std::panic::set_hook(Box::new(|_| {}));
    }

    #[test]
    fn parallel_indexed_preserves_order() {
        let ctx = ExecContext::with_threads(4);
        let out = ctx.parallel_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let ctx = ExecContext::with_threads(1);
        assert_eq!(ctx.threads(), 1);
        let out = ctx.parallel_indexed(5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_tasks() {
        let ctx = ExecContext::with_threads(4);
        let out: Vec<usize> = ctx.parallel_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn borrows_from_stack() {
        let data = [10, 20, 30];
        let ctx = ExecContext::with_threads(2);
        let out = ctx.parallel_indexed(data.len(), |i| data[i] * 2);
        assert_eq!(out, vec![20, 40, 60]);
    }

    #[test]
    fn metrics_count_scheduled_and_completed() {
        let ctx = ExecContext::with_threads(2);
        ctx.parallel_indexed(7, |i| i);
        ctx.parallel_indexed(3, |i| i);
        let m = ctx.metrics.snapshot();
        assert_eq!(m.scheduled_tasks, 10);
        assert_eq!(m.completed_tasks, 10);
        assert_eq!(m.failed_tasks, 0);
        assert_eq!(m.retried_tasks, 0);
    }

    #[test]
    fn thread_count_clamped_to_one() {
        let ctx = ExecContext::with_threads(0);
        assert_eq!(ctx.threads(), 1);
    }

    #[test]
    fn panicking_task_fails_stage_with_task_error() {
        quiet_panics();
        let ctx = ExecContext::with_threads(4).with_retry(RetryPolicy::new(3));
        let err = ctx
            .try_parallel_indexed(8, |i| {
                if i == 5 {
                    panic!("boom in {i}");
                }
                i
            })
            .unwrap_err();
        assert_eq!(err.partition, 5);
        assert_eq!(err.attempts, 3);
        assert!(err.payload.contains("boom in 5"), "{}", err.payload);
        let m = ctx.metrics.snapshot();
        assert_eq!(m.failed_tasks, 1);
        assert_eq!(m.retried_tasks, 2);
        // The process (and the context) survive: the next stage runs fine.
        let ok = ctx.try_parallel_indexed(4, |i| i * 10).unwrap();
        assert_eq!(ok, vec![0, 10, 20, 30]);
    }

    #[test]
    fn transient_panic_recovers_with_retries() {
        quiet_panics();
        use std::sync::Mutex;
        let failed_once = Mutex::new(std::collections::HashSet::new());
        let ctx = ExecContext::with_threads(4).with_retry(RetryPolicy::new(2));
        let out = ctx
            .try_parallel_indexed(16, |i| {
                // Every odd task panics exactly once, then succeeds.
                if i % 2 == 1 && failed_once.lock().unwrap().insert(i) {
                    panic!("transient {i}");
                }
                i
            })
            .unwrap();
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        let m = ctx.metrics.snapshot();
        assert_eq!(m.retried_tasks, 8);
        assert_eq!(m.completed_tasks, 16);
        assert_eq!(m.failed_tasks, 0);
    }

    #[test]
    fn on_retry_hook_observes_each_attempt() {
        quiet_panics();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let ctx = ExecContext::with_threads(1)
            .with_retry(RetryPolicy::new(4))
            .with_on_retry(move |e| {
                assert_eq!(e.partition, 0);
                // ordering: independent statistic, never a synchronization point
                seen2.fetch_add(1, Ordering::Relaxed);
            });
        let err = ctx.try_parallel_indexed(1, |_| -> usize { panic!("always") }).unwrap_err();
        assert_eq!(err.attempts, 4);
        // ordering: independent statistic, never a synchronization point
        assert_eq!(seen.load(Ordering::Relaxed), 3, "retries = attempts - 1");
    }

    #[test]
    fn sibling_tasks_survive_a_failure() {
        quiet_panics();
        let done = AtomicU64::new(0);
        let ctx = ExecContext::with_threads(2);
        let _ = ctx.try_parallel_indexed(64, |i| {
            if i == 0 {
                panic!("first task dies");
            }
            // ordering: independent statistic, never a synchronization point
            done.fetch_add(1, Ordering::Relaxed);
            i
        });
        // Some siblings ran; none brought the process down. (Exactly how
        // many ran depends on scheduling; at least the co-claimed ones.)
        let m = ctx.metrics.snapshot();
        assert_eq!(m.failed_tasks, 1);
        // ordering: independent statistic, never a synchronization point
        assert_eq!(m.completed_tasks, done.load(Ordering::Relaxed));
    }

    #[test]
    fn retry_policy_clamps_to_one_attempt() {
        assert_eq!(RetryPolicy::new(0).max_attempts, 1);
        assert_eq!(RetryPolicy::default().max_attempts, 1);
    }

    #[test]
    fn task_error_displays_context() {
        let e = TaskError { partition: 3, attempts: 2, payload: "oops".into() };
        let s = e.to_string();
        assert!(s.contains("partition 3") && s.contains("2 attempt") && s.contains("oops"), "{s}");
    }
}
