//! `cdipack` table persistence: round-trip fidelity, zero-copy decode
//! accounting, and corruption robustness at the store layer.

use minispark::exec::ExecMetrics;
use minispark::store::{Catalog, ColumnType, Schema, Table, Value};
use minispark::{Dataset, ExecContext};

fn wide_table(rows: i64) -> Table {
    let schema = Schema::new(vec![
        ("vm", ColumnType::Int),
        ("cdi", ColumnType::Float),
        ("region", ColumnType::Str),
        ("note", ColumnType::Str),
    ])
    .unwrap();
    let mut t = Table::new(schema);
    for i in 0..rows {
        t.push_row(vec![
            Value::Int(i),
            Value::Float(f64::from(u32::try_from(i % 997).unwrap()) * 1e-4),
            Value::Str(format!("region-{}", i % 3)),
            Value::Str(if i % 7 == 0 { "degraded".into() } else { "ok".into() }),
        ])
        .unwrap();
    }
    t
}

#[test]
fn pack_bytes_round_trip_exactly() {
    let t = wide_table(257);
    let bytes = t.to_pack_bytes();
    let metrics = ExecMetrics::default();
    let back = Table::from_pack_bytes(&bytes).unwrap().into_table(&metrics);
    assert_eq!(back, t);
    // Unique decode ownership: materializing costs zero accounted clones.
    assert_eq!(metrics.snapshot().rows_cloned, 0);
    // Deterministic encoder: equal tables produce equal bytes.
    assert_eq!(back.to_pack_bytes(), bytes);
}

#[test]
fn pack_preserves_float_bits() {
    let schema = Schema::new(vec![("x", ColumnType::Float)]).unwrap();
    let mut t = Table::new(schema);
    for v in [0.0, -0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.1 + 0.2, 1e-308] {
        t.push_row(vec![Value::Float(v)]).unwrap();
    }
    let metrics = ExecMetrics::default();
    let back =
        Table::from_pack_bytes(&t.to_pack_bytes()).unwrap().into_table(&metrics);
    let orig = match t.column("x").unwrap() {
        minispark::store::Column::Float(c) => c.clone(),
        _ => unreachable!(),
    };
    let got = match back.column("x").unwrap() {
        minispark::store::Column::Float(c) => c.clone(),
        _ => unreachable!(),
    };
    for (a, b) in orig.iter().zip(got.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn packed_columns_are_shared_not_copied() {
    let t = wide_table(100);
    let packed = Table::from_pack_bytes(&t.to_pack_bytes()).unwrap();

    // Two float handles alias the same rows — refcount bumps, not copies.
    let a = packed.floats("cdi").unwrap();
    let b = packed.floats("cdi").unwrap();
    assert!(std::ptr::eq(&a[0], &b[0]), "column handles alias one materialization");

    // A Dataset over the shared partition counts without cloning rows.
    let ctx = ExecContext::new();
    let ds = Dataset::from_partitions(vec![packed.floats("cdi").unwrap()]).unwrap();
    assert_eq!(ds.count(&ctx), 100);
    assert_eq!(ctx.metrics.snapshot().rows_cloned, 0, "plan reads are refcount bumps");

    // Materializing to an owned Table while the packed view is alive is a
    // real copy — and the accounting says so.
    let metrics = ExecMetrics::default();
    let owned = packed.to_table(&metrics);
    assert_eq!(owned, t);
    assert_eq!(metrics.snapshot().rows_cloned, 4 * 100, "4 shared columns × 100 rows");
}

#[test]
fn corrupt_pack_bytes_are_typed_errors_never_panics() {
    let t = wide_table(64);
    let bytes = t.to_pack_bytes();

    // Truncation at every prefix length must fail cleanly (or, for the
    // full length, succeed) — never panic.
    for cut in 0..bytes.len() {
        let _ = Table::from_pack_bytes(&bytes[..cut]).map(|_| ());
    }
    assert!(Table::from_pack_bytes(&bytes[..bytes.len() / 2]).is_err());

    // Single-byte flips decode to an error or to *some* table — but the
    // decoder itself must stay total.
    for i in 0..bytes.len().min(512) {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0x41;
        let _ = Table::from_pack_bytes(&mutated).map(|_| ());
    }

    // Over-length declaration: claim a giant row count.
    let mut over = bytes.clone();
    let keep = over.len() / 4;
    over.truncate(keep);
    assert!(Table::from_pack_bytes(&over).is_err());

    // Trailing garbage is rejected.
    let mut extra = bytes.clone();
    extra.push(0x00);
    assert!(Table::from_pack_bytes(&extra).is_err());
}

#[test]
fn catalog_speaks_both_dialects() {
    let dir = std::env::temp_dir().join(format!("minispark-cdp-{}", std::process::id()));
    let cat = Catalog::open(&dir).unwrap();
    let t = wide_table(16);
    cat.save("as_json", &t).unwrap();
    cat.save_packed("as_pack", &t).unwrap();
    assert_eq!(cat.list().unwrap(), vec!["as_json", "as_pack"]);
    assert_eq!(cat.load("as_json").unwrap(), t);
    assert_eq!(cat.load("as_pack").unwrap(), t);
    let packed = cat.load_packed("as_pack").unwrap();
    assert_eq!(packed.len(), 16);
    assert!(cat.load("missing").is_err());

    // cdipack is the compact dialect: the same table takes fewer bytes.
    let json_len = std::fs::metadata(dir.join("as_json.json")).unwrap().len();
    let pack_len = std::fs::metadata(dir.join("as_pack.cdp")).unwrap().len();
    assert!(
        pack_len * 2 < json_len,
        "cdipack ({pack_len} B) should be well under half of JSON ({json_len} B)"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
