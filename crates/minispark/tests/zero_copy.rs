//! Regression tests for the zero-copy data plane: materialized partitions
//! (shuffles, caches) must be re-read by `Arc` bump, never by deep-copying
//! rows. `ExecMetrics::rows_cloned` makes that observable, so these tests
//! pin the copy behaviour, not just the results.

use minispark::{Dataset, ExecContext};

/// Counting a cached source never deep-copies a row: the cache pins the
/// source partitions by refcount and `count` reads lengths through the
/// shared reference.
#[test]
fn cached_source_count_is_zero_copy() {
    let ctx = ExecContext::with_threads(4);
    let d = Dataset::from_vec((0..10_000i64).collect(), 8).unwrap().cache();
    assert_eq!(d.count(&ctx), 10_000);
    assert_eq!(d.count(&ctx), 10_000);
    let m = ctx.metrics.snapshot();
    assert_eq!(m.rows_cloned, 0, "cache + count must be pure Arc bumps");
    assert_eq!(m.bytes_cloned, 0);
}

/// Re-reading a materialized shuffle is free: the first action pays the
/// map-side consumption of the retained source, every later action reuses
/// the shuffle buckets by refcount bump.
#[test]
fn cached_shuffle_reread_does_not_reclone() {
    let ctx = ExecContext::with_threads(4);
    let pairs: Vec<(u64, i64)> = (0..10_000).map(|i| (i % 97, 1i64)).collect();
    let reduced = Dataset::from_vec(pairs, 8).unwrap().reduce_by_key(4, |a, b| a + b).unwrap();

    assert_eq!(reduced.count(&ctx), 97);
    let after_first = ctx.metrics.snapshot().rows_cloned;

    assert_eq!(reduced.count(&ctx), 97);
    assert_eq!(reduced.count(&ctx), 97);
    let after_rereads = ctx.metrics.snapshot().rows_cloned;
    assert_eq!(
        after_rereads, after_first,
        "re-reading a cached shuffle must not deep-copy any rows"
    );
}

/// `bytes_cloned` tracks `rows_cloned` at the row width, so a copy of N
/// 16-byte rows is accounted as exactly 16·N bytes.
#[test]
fn bytes_cloned_scales_with_row_width() {
    let ctx = ExecContext::with_threads(2);
    let d = Dataset::from_vec((0..1_000u64).map(|i| (i, i)).collect::<Vec<(u64, u64)>>(), 4)
        .unwrap()
        .cache();
    // collect() needs owned rows while the cache retains them: every row is
    // counted once as cloned.
    assert_eq!(d.collect(&ctx).len(), 1_000);
    let m = ctx.metrics.snapshot();
    assert_eq!(m.rows_cloned, 1_000);
    assert_eq!(m.bytes_cloned, 1_000 * std::mem::size_of::<(u64, u64)>() as u64);
}

/// Wide-op results are identical — content AND order — across fresh
/// execution contexts with different thread counts: the fixed-seed shuffle
/// hash plus first-seen aggregation order leave nothing to scheduling.
#[test]
fn wide_op_output_is_deterministic_across_contexts() {
    let pairs: Vec<(String, i64)> =
        (0..5_000).map(|i| (format!("key-{}", i % 101), i)).collect();
    let run = |threads: usize| {
        let ctx = ExecContext::with_threads(threads);
        Dataset::from_vec(pairs.clone(), 7)
            .unwrap()
            .reduce_by_key(5, |a, b| a + b)
            .unwrap()
            .collect(&ctx)
    };
    let one = run(1);
    assert_eq!(one, run(4));
    assert_eq!(one, run(8));
}

/// Two independently-shuffled datasets co-partition: a key lands in the
/// same output bucket on both sides, which is what lets `join` build each
/// bucket locally without a second shuffle.
#[test]
fn shuffles_co_partition_matching_keys() {
    let buckets = |pairs: Vec<(u64, i64)>, in_parts: usize| -> Vec<Vec<(u64, i64)>> {
        let ctx = ExecContext::with_threads(4);
        Dataset::from_vec(pairs, in_parts)
            .unwrap()
            .reduce_by_key(6, |a, b| a + b)
            .unwrap()
            .map_partitions(|rows| vec![rows])
            .collect(&ctx)
    };
    let a = buckets((0..4_000).map(|i| (i % 53, 1i64)).collect(), 3);
    let b = buckets((0..900).map(|i| ((i * 7) % 53, -1i64)).collect(), 9);
    assert_eq!(a.len(), 6);
    assert_eq!(b.len(), 6);
    let bucket_of = |parts: &[Vec<(u64, i64)>], key: u64| {
        parts.iter().position(|p| p.iter().any(|(k, _)| *k == key))
    };
    for key in 0..53 {
        let ba = bucket_of(&a, key);
        let bb = bucket_of(&b, key);
        assert!(ba.is_some() && bb.is_some(), "key {key} missing from a shuffle");
        assert_eq!(ba, bb, "key {key} must land in the same bucket on both sides");
    }
}
