//! Property-based tests: every dataset operation must agree with its plain
//! `Vec`/`HashMap` reference implementation, for any data and any
//! partitioning.

use std::collections::{BTreeSet, HashMap};

use minispark::{Dataset, ExecContext};
use proptest::prelude::*;

fn ctx() -> ExecContext {
    ExecContext::with_threads(4)
}

proptest! {
    /// collect() preserves content and order through any partitioning.
    #[test]
    fn from_vec_collect_identity(
        data in prop::collection::vec(-1000i64..1000, 0..200),
        parts in 1usize..12
    ) {
        let d = Dataset::from_vec(data.clone(), parts).unwrap();
        prop_assert_eq!(d.collect(&ctx()), data);
    }

    /// map/filter/flat_map chains agree with iterator equivalents.
    #[test]
    fn narrow_ops_match_reference(
        data in prop::collection::vec(-1000i64..1000, 0..200),
        parts in 1usize..8
    ) {
        let d = Dataset::from_vec(data.clone(), parts).unwrap();
        let got = d
            .map(|x| x.wrapping_mul(3))
            .filter(|x| x % 2 == 0)
            .flat_map(|x| [x, x + 1])
            .collect(&ctx());
        let expected: Vec<i64> = data
            .iter()
            .map(|x| x.wrapping_mul(3))
            .filter(|x| x % 2 == 0)
            .flat_map(|x| [x, x + 1])
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// count and fold agree with len/sum for any partitioning.
    #[test]
    fn count_and_fold_match(
        data in prop::collection::vec(-1000i64..1000, 0..200),
        parts in 1usize..8
    ) {
        let d = Dataset::from_vec(data.clone(), parts).unwrap();
        prop_assert_eq!(d.count(&ctx()), data.len());
        let sum = d.fold(&ctx(), 0i64, |a, x| a + x, |a, b| a + b);
        prop_assert_eq!(sum, data.iter().sum::<i64>());
    }

    /// reduce_by_key equals a HashMap fold.
    #[test]
    fn reduce_by_key_matches_hashmap(
        pairs in prop::collection::vec((0u8..16, -100i64..100), 0..200),
        parts in 1usize..8,
        out_parts in 1usize..8
    ) {
        let d = Dataset::from_vec(pairs.clone(), parts).unwrap();
        let got = d.reduce_by_key(out_parts, |a, b| a + b).unwrap().collect_map(&ctx());
        let mut expected: HashMap<u8, i64> = HashMap::new();
        for (k, v) in &pairs {
            *expected.entry(*k).or_insert(0) += v;
        }
        prop_assert_eq!(got, expected);
    }

    /// group_by_key gathers exactly the multiset of values per key.
    #[test]
    fn group_by_key_matches_reference(
        pairs in prop::collection::vec((0u8..8, -50i64..50), 0..150),
        parts in 1usize..6
    ) {
        let d = Dataset::from_vec(pairs.clone(), parts).unwrap();
        let mut got: HashMap<u8, Vec<i64>> = d.group_by_key(3).unwrap().collect_map(&ctx());
        for v in got.values_mut() {
            v.sort_unstable();
        }
        let mut expected: HashMap<u8, Vec<i64>> = HashMap::new();
        for (k, v) in &pairs {
            expected.entry(*k).or_default().push(*v);
        }
        for v in expected.values_mut() {
            v.sort_unstable();
        }
        prop_assert_eq!(got, expected);
    }

    /// join equals the nested-loop reference (as multisets).
    #[test]
    fn join_matches_nested_loop(
        left in prop::collection::vec((0u8..6, 0i64..50), 0..60),
        right in prop::collection::vec((0u8..6, 0i64..50), 0..60),
        parts in 1usize..6
    ) {
        let l = Dataset::from_vec(left.clone(), parts).unwrap();
        let r = Dataset::from_vec(right.clone(), parts).unwrap();
        let mut got = l.join(&r, 4).unwrap().collect(&ctx());
        got.sort_unstable();
        let mut expected: Vec<(u8, (i64, i64))> = Vec::new();
        for (lk, lv) in &left {
            for (rk, rv) in &right {
                if lk == rk {
                    expected.push((*lk, (*lv, *rv)));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// sort_by_key globally orders for any input and partition count.
    #[test]
    fn sort_matches_reference(
        data in prop::collection::vec(-1000i64..1000, 0..200),
        parts in 1usize..8,
        out_parts in 1usize..8
    ) {
        let d = Dataset::from_vec(data.clone(), parts).unwrap();
        let got = d.sort_by_key(out_parts, |x| *x).unwrap().collect(&ctx());
        let mut expected = data;
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// sort_by_key is stable: rows with equal keys keep their input order.
    /// The k-way merge breaks ties by run index, so stability survives any
    /// partitioning, not just the single-partition case.
    #[test]
    fn sort_is_stable_under_any_partitioning(
        keys in prop::collection::vec(0u8..6, 0..200),
        parts in 1usize..8,
        out_parts in 1usize..8
    ) {
        let pairs: Vec<(u8, usize)> = keys.into_iter().enumerate().map(|(i, k)| (k, i)).collect();
        let d = Dataset::from_vec(pairs.clone(), parts).unwrap();
        let got = d.sort_by_key(out_parts, |&(k, _)| k).unwrap().collect(&ctx());
        let mut expected = pairs;
        expected.sort_by_key(|&(k, _)| k); // std stable sort is the reference
        prop_assert_eq!(got, expected);
    }

    /// reduce_by_key output order is a pure function of the data: fresh
    /// contexts with different thread counts produce the identical Vec.
    #[test]
    fn reduce_by_key_order_is_scheduling_independent(
        pairs in prop::collection::vec((0u8..16, -100i64..100), 0..200),
        parts in 1usize..8,
        out_parts in 1usize..8
    ) {
        let run = |threads: usize| {
            let c = ExecContext::with_threads(threads);
            Dataset::from_vec(pairs.clone(), parts)
                .unwrap()
                .reduce_by_key(out_parts, |a, b| a.wrapping_add(b))
                .unwrap()
                .collect(&c)
        };
        let serial = run(1);
        prop_assert_eq!(&run(4), &serial);
        prop_assert_eq!(&run(7), &serial);
    }

    /// distinct equals the set of inputs.
    #[test]
    fn distinct_matches_set(
        data in prop::collection::vec(-20i64..20, 0..150),
        parts in 1usize..6
    ) {
        let d = Dataset::from_vec(data.clone(), parts).unwrap();
        let mut got = d.distinct(3).unwrap().collect(&ctx());
        got.sort_unstable();
        let expected: Vec<i64> = data.iter().copied().collect::<BTreeSet<_>>().into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    /// union concatenates in order.
    #[test]
    fn union_concatenates(
        a in prop::collection::vec(0i64..100, 0..50),
        b in prop::collection::vec(0i64..100, 0..50)
    ) {
        let da = Dataset::from_vec(a.clone(), 3).unwrap();
        let db = Dataset::from_vec(b.clone(), 2).unwrap();
        let mut expected = a;
        expected.extend(b);
        prop_assert_eq!(da.union(&db).collect(&ctx()), expected);
    }
}
