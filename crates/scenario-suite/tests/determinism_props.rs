//! Determinism properties of the scenario catalog — the guarantees that
//! make pinned floors and byte-compared artifacts meaningful:
//!
//! 1. Same seed + params ⇒ byte-identical event stream and ground truth,
//!    independent of how many times (or in which process) the scenario is
//!    rebuilt.
//! 2. The live damage table is exactly identical across shard counts —
//!    thread scheduling must never leak into scores.
//! 3. Seeds landing in different incident slots produce pairwise
//!    time-disjoint damage windows.

use proptest::prelude::*;
use scenario_suite::catalog::{build, ScenarioConfig, SCENARIO_NAMES, SLOTS};
use scenario_suite::run::ScenarioRun;
use scenario_suite::table::live_table;

proptest! {
    /// Two independent builds of the same (seed, scenario) serialize to
    /// the same bytes: faults, extracted events, ground truth, and the
    /// sliced feed all match exactly.
    #[test]
    fn same_seed_is_byte_identical(seed in 0u64..1000, idx in 0usize..10) {
        let name = SCENARIO_NAMES[idx];
        let cfg = ScenarioConfig::quick(seed);
        let a = build(name, &cfg).unwrap();
        let b = build(name, &cfg).unwrap();
        prop_assert_eq!(a.world.faults(), b.world.faults());
        prop_assert_eq!(
            serde_json::to_string(&a.truth).unwrap(),
            serde_json::to_string(&b.truth).unwrap()
        );
        let ra = ScenarioRun::prepare(&a).unwrap();
        let rb = ScenarioRun::prepare(&b).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&ra.events).unwrap(),
            serde_json::to_string(&rb.events).unwrap()
        );
        prop_assert_eq!(ra.feed.total_spans(), rb.feed.total_spans());
        prop_assert_eq!(&ra.batch, &rb.batch);
    }

    /// The live table is EXACTLY equal (not just close) across shard
    /// counts: partitioning by target never changes per-target float
    /// operation order.
    #[test]
    fn live_table_is_shard_count_invariant(seed in 0u64..500, idx in 0usize..10) {
        let cfg = ScenarioConfig::quick(seed);
        let s = build(SCENARIO_NAMES[idx], &cfg).unwrap();
        let run = ScenarioRun::prepare(&s).unwrap();
        let one = live_table(&s, &run.feed, 1).unwrap();
        let three = live_table(&s, &run.feed, 3).unwrap();
        prop_assert_eq!(one, three);
    }

    /// Different slot residues ⇒ every pair of damage windows across the
    /// two builds is time-disjoint (the placement-scheme guarantee).
    #[test]
    fn different_slots_never_overlap(base in 0u64..250, offset in 1u64..4, idx in 0usize..10) {
        let seed_a = base * SLOTS + (base % SLOTS);
        let seed_b = seed_a + offset; // different residue mod SLOTS
        let cfg_a = ScenarioConfig::quick(seed_a);
        let cfg_b = ScenarioConfig::quick(seed_b);
        prop_assert_ne!(cfg_a.slot(), cfg_b.slot());
        let name = SCENARIO_NAMES[idx];
        let ta = build(name, &cfg_a).unwrap().truth;
        let tb = build(name, &cfg_b).unwrap().truth;
        prop_assert!(!ta.is_empty() && !tb.is_empty());
        for wa in ta.windows() {
            for wb in tb.windows() {
                prop_assert!(
                    !wa.range.overlaps(&wb.range),
                    "{}: {:?} overlaps {:?}", name, wa.range, wb.range
                );
            }
        }
    }
}
