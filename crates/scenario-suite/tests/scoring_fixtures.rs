//! Hand-computed scoring fixtures: every branch of the precision /
//! recall / TTD math checked against values derived on paper, including
//! the degenerate and boundary cases the matrix must get right.

use cdi_core::event::Severity;
use scenario_suite::detector::Detection;
use scenario_suite::score::{score, ScoreConfig};
use scenario_suite::truth::{DamageWindow, GroundTruth, TruthScope};
use simfleet::faults::{DamageCategory, SimRange};
use simfleet::topology::{DeploymentArch, Fleet, FleetConfig};

fn fleet() -> Fleet {
    // 2 regions × 1 AZ × 1 cluster × 2 NCs × 2 VMs = 8 VMs (0..8).
    Fleet::build(&FleetConfig {
        regions: vec!["r1".into(), "r2".into()],
        azs_per_region: 1,
        clusters_per_az: 1,
        ncs_per_cluster: 2,
        vms_per_nc: 2,
        nc_cores: 8,
        machine_models: vec!["m".into()],
        arch: DeploymentArch::Hybrid,
    })
}

fn window(vm: u64, start: i64, end: i64) -> DamageWindow {
    DamageWindow {
        scope: TruthScope::Vm(vm),
        category: DamageCategory::Performance,
        range: SimRange::new(start, end),
        severity: Severity::Error,
    }
}

fn det(vm: u64, time: i64) -> Detection {
    Detection {
        scope: TruthScope::Vm(vm),
        time,
        category: Some(DamageCategory::Performance),
    }
}

const CFG: ScoreConfig = ScoreConfig { slack_ms: 0, grace_ms: 0 };

#[test]
fn zero_detections_is_perfect_precision_zero_recall() {
    let truth = GroundTruth::new(vec![window(0, 100, 200)]);
    let s = score(&truth, &[], &fleet(), &CFG);
    assert_eq!(s.precision, 1.0);
    assert_eq!(s.recall, 0.0);
    assert_eq!(s.f1, 0.0);
    assert_eq!(s.mean_ttd_ms, None);
    assert_eq!((s.detections, s.matched_detections), (0, 0));
    assert_eq!((s.total_windows, s.detected_windows), (1, 0));
}

#[test]
fn zero_windows_makes_every_detection_false() {
    let truth = GroundTruth::new(vec![]);
    let s = score(&truth, &[det(0, 100), det(1, 200)], &fleet(), &CFG);
    assert_eq!(s.precision, 0.0);
    assert_eq!(s.recall, 1.0, "vacuous recall: nothing to miss");
    assert_eq!(s.f1, 0.0);
    assert_eq!(s.mean_ttd_ms, None);
}

#[test]
fn empty_truth_and_no_detections_is_vacuously_perfect() {
    let s = score(&GroundTruth::new(vec![]), &[], &fleet(), &CFG);
    assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
    assert_eq!(s.mean_ttd_ms, None);
}

#[test]
fn hand_computed_partial_match() {
    // 3 windows on VM 0; 4 detections, 2 inside windows.
    // precision = 2/4 = 0.5, recall = 2/3, F1 = 2·(1/2)·(2/3)/(1/2+2/3) = 4/7.
    let truth = GroundTruth::new(vec![
        window(0, 100, 200),
        window(0, 300, 400),
        window(0, 500, 600),
    ]);
    let dets = vec![det(0, 150), det(0, 350), det(0, 450), det(0, 700)];
    let s = score(&truth, &dets, &fleet(), &CFG);
    assert_eq!(s.precision, 0.5);
    assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
    assert!((s.f1 - 4.0 / 7.0).abs() < 1e-12);
    // TTD: windows detected at 150 (ttd 50) and 350 (ttd 50) → mean 50.
    assert_eq!(s.mean_ttd_ms, Some(50.0));
}

#[test]
fn one_detection_can_satisfy_overlapping_windows() {
    // Two overlapping labels (e.g. DDoS: unavailability + performance on
    // the same interval) detected by a single category-free detection.
    let truth = GroundTruth::new(vec![
        DamageWindow {
            scope: TruthScope::Vm(0),
            category: DamageCategory::Unavailability,
            range: SimRange::new(100, 300),
            severity: Severity::Fatal,
        },
        DamageWindow {
            scope: TruthScope::Vm(0),
            category: DamageCategory::Performance,
            range: SimRange::new(150, 250),
            severity: Severity::Error,
        },
    ]);
    let dets = vec![Detection { scope: TruthScope::Vm(0), time: 200, category: None }];
    let s = score(&truth, &dets, &fleet(), &CFG);
    assert_eq!((s.detected_windows, s.total_windows), (2, 2));
    assert_eq!((s.matched_detections, s.detections), (1, 1));
    assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
}

#[test]
fn boundaries_are_half_open() {
    let truth = GroundTruth::new(vec![window(0, 100, 200)]);
    // Exactly at start: inside. Exactly at end: outside (zero slack).
    assert_eq!(score(&truth, &[det(0, 100)], &fleet(), &CFG).recall, 1.0);
    assert_eq!(score(&truth, &[det(0, 200)], &fleet(), &CFG).recall, 0.0);
    assert_eq!(score(&truth, &[det(0, 99)], &fleet(), &CFG).recall, 0.0);
    // Slack lets a tick-start detection reach forward into the window.
    let slack = ScoreConfig { slack_ms: 10, grace_ms: 0 };
    assert_eq!(score(&truth, &[det(0, 95)], &fleet(), &slack).recall, 1.0);
    // Grace pulls the window start back for backward-looking derivation.
    let grace = ScoreConfig { slack_ms: 0, grace_ms: 10 };
    assert_eq!(score(&truth, &[det(0, 95)], &fleet(), &grace).recall, 1.0);
    assert_eq!(score(&truth, &[det(0, 85)], &fleet(), &grace).recall, 0.0);
}

#[test]
fn early_detection_ttd_clamps_at_zero() {
    let truth = GroundTruth::new(vec![window(0, 100, 200)]);
    let grace = ScoreConfig { slack_ms: 0, grace_ms: 20 };
    let s = score(&truth, &[det(0, 90)], &fleet(), &grace);
    assert_eq!(s.recall, 1.0);
    assert_eq!(s.mean_ttd_ms, Some(0.0), "detections before the start count as 0, not negative");
}

#[test]
fn scope_and_category_must_both_agree() {
    let truth = GroundTruth::new(vec![window(0, 100, 200)]);
    // Right time, wrong VM.
    assert_eq!(score(&truth, &[det(1, 150)], &fleet(), &CFG).recall, 0.0);
    // Right time and VM, wrong category.
    let wrong_cat = Detection {
        scope: TruthScope::Vm(0),
        time: 150,
        category: Some(DamageCategory::Unavailability),
    };
    assert_eq!(score(&truth, &[wrong_cat], &fleet(), &CFG).recall, 0.0);
    // Category-free matches; so does an enclosing scope (VM 0's host).
    let no_cat = Detection { scope: TruthScope::Vm(0), time: 150, category: None };
    assert_eq!(score(&truth, &[no_cat], &fleet(), &CFG).recall, 1.0);
    let host = fleet().vm(0).map(|v| v.nc).unwrap_or_default();
    let nc_scope = Detection { scope: TruthScope::Nc(host), time: 150, category: None };
    assert_eq!(score(&truth, &[nc_scope], &fleet(), &CFG).recall, 1.0);
    // Global detections satisfy any scope.
    let global = Detection { scope: TruthScope::Global, time: 150, category: None };
    assert_eq!(score(&truth, &[global], &fleet(), &CFG).recall, 1.0);
}

#[test]
fn ttd_uses_the_earliest_matching_detection() {
    let truth = GroundTruth::new(vec![window(0, 1000, 5000)]);
    let dets = vec![det(0, 4000), det(0, 1500), det(0, 3000)];
    let s = score(&truth, &dets, &fleet(), &CFG);
    assert_eq!(s.mean_ttd_ms, Some(500.0));
    assert_eq!(s.matched_detections, 3);
}
