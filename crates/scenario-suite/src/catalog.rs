//! The scenario catalog: ten named, seeded, parameterized failure
//! stories, each with labeled ground truth.
//!
//! ## Seed-slot placement
//!
//! Every scenario schedules its incident inside one of [`SLOTS`] fixed
//! time slots, chosen by `seed % SLOTS`, starting at
//! `SLOT_BASE + slot · SLOT_STRIDE`. Each scenario's whole incident fits
//! inside one stride, which gives two properties the proptests pin:
//!
//! - **Same seed ⇒ byte-identical**: placement, target choice, and all
//!   intensities derive only from the seed (SplitMix64, no OS entropy).
//! - **Different slot residues ⇒ time-disjoint damage windows**: two seeds
//!   whose `seed % SLOTS` differ place their incidents in non-overlapping
//!   slots, so every pair of ground-truth windows across the two builds is
//!   disjoint.
//!
//! `SLOT_BASE` also guarantees every incident starts *after* the trailing
//! calibration window of the K-Sigma adapter (12 ticks × 15 min = 3 h) and
//! the surge detector's armed history (6 × 10 min), so no detector is
//! structurally blind to the catalog.

use cdi_core::error::{CdiError, Result};
use cdi_core::event::Severity;
use simfleet::faults::{DamageCategory, FaultInjection, FaultKind, FaultTarget, SimRange};
use simfleet::scenario::{fail_power_domain, rollout_wave, DAY, HOUR, MINUTE};
use simfleet::topology::{DeploymentArch, Fleet, FleetConfig, NcId, VmId};
use simfleet::{Scope, SimWorld};

use crate::truth::{DamageWindow, GroundTruth, TruthScope};

/// Number of disjoint incident slots in the placement scheme.
pub const SLOTS: u64 = 4;
/// Stride between slot starts; every scenario's incident budget fits
/// inside one stride (the widest incident in the catalog — the five-step
/// rollout wave — spans 3 h 25 m).
pub const SLOT_STRIDE: i64 = 4 * HOUR;
/// First slot start: after every detector's calibration window.
pub const SLOT_BASE: i64 = 5 * HOUR;

/// The ten scenario names, in matrix order.
pub const SCENARIO_NAMES: [&str; 10] = [
    "bad-rollout-wave",
    "control-plane-brownout",
    "correlated-switch-failure",
    "ddos-blackhole-wave",
    "flapping-recoveries",
    "live-migration-storm",
    "noisy-neighbor-saturation",
    "power-domain-event",
    "regional-failover",
    "slow-burn-disk-degradation",
];

/// Parameters shared by every scenario build.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Seed driving placement, target choice, and the simulated telemetry.
    pub seed: u64,
    /// Fleet shape (at least two regions for the failover scenario).
    pub fleet: FleetConfig,
    /// Tick size of the live feed and of the per-tick damage tables.
    pub tick_ms: i64,
    /// Whether this is the reduced quick-mode fleet (selects which pinned
    /// floor set applies).
    pub quick: bool,
}

impl ScenarioConfig {
    /// The full evaluation fleet: 2 regions × 2 AZs × 2 clusters × 2 NCs
    /// × 4 VMs = 64 VMs, one simulated day, 15-minute ticks.
    pub fn new(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            fleet: FleetConfig {
                regions: vec!["r-east".into(), "r-west".into()],
                azs_per_region: 2,
                clusters_per_az: 2,
                ncs_per_cluster: 2,
                vms_per_nc: 4,
                nc_cores: 32,
                machine_models: vec!["modelA".into(), "modelB".into()],
                arch: DeploymentArch::Hybrid,
            },
            tick_ms: 15 * MINUTE,
            quick: false,
        }
    }

    /// A reduced fleet (2 regions × 1 AZ × 1 cluster × 2 NCs × 2 VMs =
    /// 8 VMs) for CI quick mode and property tests. Same horizon and
    /// placement scheme, so floors pinned for quick mode stay meaningful.
    pub fn quick(seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            fleet: FleetConfig {
                regions: vec!["r-east".into(), "r-west".into()],
                azs_per_region: 1,
                clusters_per_az: 1,
                ncs_per_cluster: 2,
                vms_per_nc: 2,
                nc_cores: 16,
                machine_models: vec!["modelA".into()],
                arch: DeploymentArch::Hybrid,
            },
            quick: true,
            ..ScenarioConfig::new(seed)
        }
    }

    /// The incident slot this seed lands in (`seed % SLOTS`).
    pub fn slot(&self) -> u64 {
        self.seed % SLOTS
    }

    /// Start of this seed's incident slot.
    pub fn incident_start(&self) -> i64 {
        SLOT_BASE + self.slot() as i64 * SLOT_STRIDE
    }
}

/// A built scenario: the world to evaluate plus its answer sheet.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable catalog name (one of [`SCENARIO_NAMES`]).
    pub name: &'static str,
    /// The seeded world with the scenario's faults injected.
    pub world: SimWorld,
    /// Labeled damage windows.
    pub truth: GroundTruth,
    /// Evaluation window start (ms).
    pub start: i64,
    /// Evaluation window end (ms).
    pub end: i64,
    /// Tick size for feeds and damage tables (ms).
    pub tick_ms: i64,
}

/// SplitMix64: the catalog's only randomness, fully determined by the
/// seed (stability-lint R3: no OS entropy in a deterministic crate).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seed-derived pick in `0..n` (0 when `n` is 0), salted so different
/// decision points in one scenario draw independently.
fn pick(seed: u64, salt: u64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut s = seed ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    (splitmix64(&mut s) % n as u64) as usize
}

/// `k` distinct VM ids drawn from the fleet, ascending. Deterministic in
/// the seed; if the fleet holds fewer than `k` VMs, all of them.
fn pick_vms(seed: u64, salt: u64, fleet: &Fleet, k: usize) -> Vec<VmId> {
    let mut ids: Vec<VmId> = fleet.vms().iter().map(|v| v.id).collect();
    ids.sort_unstable();
    let mut out = Vec::new();
    let mut s = seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F);
    while !ids.is_empty() && out.len() < k {
        let i = (splitmix64(&mut s) % ids.len() as u64) as usize;
        out.push(ids.swap_remove(i));
    }
    out.sort_unstable();
    out
}

fn window(
    scope: TruthScope,
    category: DamageCategory,
    start: i64,
    end: i64,
    severity: Severity,
) -> DamageWindow {
    DamageWindow { scope, category, range: SimRange::new(start, end), severity }
}

struct Built {
    world: SimWorld,
    truth: GroundTruth,
}

/// Build one named scenario. Unknown names are a typed error.
pub fn build(name: &str, cfg: &ScenarioConfig) -> Result<Scenario> {
    let fleet = Fleet::build(&cfg.fleet);
    let world = SimWorld::new(fleet, cfg.seed);
    let t0 = cfg.incident_start();
    let built = match name {
        "regional-failover" => regional_failover(world, cfg, t0),
        "ddos-blackhole-wave" => ddos_blackhole_wave(world, cfg, t0),
        "noisy-neighbor-saturation" => noisy_neighbor_saturation(world, cfg, t0),
        "control-plane-brownout" => control_plane_brownout(world, t0),
        "live-migration-storm" => live_migration_storm(world, cfg, t0),
        "slow-burn-disk-degradation" => slow_burn_disk_degradation(world, cfg, t0),
        "flapping-recoveries" => flapping_recoveries(world, cfg, t0),
        "correlated-switch-failure" => correlated_switch_failure(world, cfg, t0),
        "bad-rollout-wave" => bad_rollout_wave(world, cfg, t0),
        "power-domain-event" => power_domain_event(world, cfg, t0),
        other => {
            return Err(CdiError::invalid(format!(
                "unknown scenario `{other}`; catalog: {SCENARIO_NAMES:?}"
            )))
        }
    }?;
    let static_name = SCENARIO_NAMES
        .iter()
        .find(|n| **n == name)
        .copied()
        .unwrap_or("regional-failover");
    Ok(Scenario {
        name: static_name,
        world: built.world,
        truth: built.truth,
        start: 0,
        end: DAY,
        tick_ms: cfg.tick_ms,
    })
}

/// Build the whole catalog in matrix order.
pub fn catalog(cfg: &ScenarioConfig) -> Result<Vec<Scenario>> {
    SCENARIO_NAMES.iter().map(|name| build(name, cfg)).collect()
}

/// An entire region's hosts go dark for 45 minutes — the paper's
/// Unavailability story at its bluntest. Every NC in the seed-chosen
/// region is struck; the label is a single region-scoped window.
fn regional_failover(mut world: SimWorld, cfg: &ScenarioConfig, t0: i64) -> Result<Built> {
    let regions = &cfg.fleet.regions;
    if regions.len() < 2 {
        return Err(CdiError::invalid("regional failover needs at least two regions"));
    }
    let region = regions[pick(cfg.seed, 0x01, regions.len())].clone();
    let end = t0 + 45 * MINUTE;
    let n = world.inject_scope(FaultKind::NcDown, &Scope::Region(region.clone()), t0, end);
    if n == 0 {
        return Err(CdiError::invalid(format!("region `{region}` resolved to no hosts")));
    }
    let truth = GroundTruth::new(vec![window(
        TruthScope::Region(region),
        DamageCategory::Unavailability,
        t0,
        end,
        Severity::Fatal,
    )]);
    Ok(Built { world, truth })
}

/// A rolling DDoS mitigation wave: six victims are blackholed in
/// staggered 25-minute episodes. Blackholing nulls traffic (an
/// Unavailability stateful span) *and* saturates the loss metric, so each
/// victim carries both an Unavailability and a Performance label.
fn ddos_blackhole_wave(mut world: SimWorld, cfg: &ScenarioConfig, t0: i64) -> Result<Built> {
    let victims = pick_vms(cfg.seed, 0x02, &world.fleet, 6);
    if victims.is_empty() {
        return Err(CdiError::invalid("empty fleet"));
    }
    let mut windows = Vec::new();
    for (i, vm) in victims.iter().enumerate() {
        let s = t0 + i as i64 * 10 * MINUTE;
        let e = s + 25 * MINUTE;
        world.inject(FaultInjection::new(
            FaultKind::DdosBlackhole,
            FaultTarget::Vm(*vm),
            s,
            e,
        ));
        windows.push(window(
            TruthScope::Vm(*vm),
            DamageCategory::Unavailability,
            s,
            e,
            Severity::Fatal,
        ));
        windows.push(window(
            TruthScope::Vm(*vm),
            DamageCategory::Performance,
            s,
            e,
            Severity::Error,
        ));
    }
    Ok(Built { world, truth: GroundTruth::new(windows) })
}

/// Core-allocation overlap saturates two hosts of one cluster for two
/// hours (the Case 5 hybrid-deployment bug as a steady-state noisy
/// neighbor). Labels are per-NC Performance windows.
fn noisy_neighbor_saturation(mut world: SimWorld, cfg: &ScenarioConfig, t0: i64) -> Result<Built> {
    let clusters = world.fleet.cluster_names();
    let cluster = clusters
        .get(pick(cfg.seed, 0x03, clusters.len()))
        .cloned()
        .ok_or_else(|| CdiError::invalid("fleet has no clusters"))?;
    let ncs: Vec<NcId> = world.fleet.ncs_in(&Scope::Cluster(cluster.clone()));
    let afflicted: Vec<NcId> = ncs.iter().copied().take(2).collect();
    if afflicted.is_empty() {
        return Err(CdiError::invalid(format!("cluster `{cluster}` has no hosts")));
    }
    let end = t0 + 2 * HOUR;
    let mut windows = Vec::new();
    for nc in &afflicted {
        world.inject(FaultInjection::new(
            FaultKind::CpuContention { steal: 0.5 },
            FaultTarget::Nc(*nc),
            t0,
            end,
        ));
        windows.push(window(
            TruthScope::Nc(*nc),
            DamageCategory::Performance,
            t0,
            end,
            Severity::Error,
        ));
    }
    Ok(Built { world, truth: GroundTruth::new(windows) })
}

/// The control plane browns out fleet-wide in three 20-minute pulses with
/// 40-minute recoveries (the Case 2 / 2025-01-07 shape). Labels are
/// global ControlPlane windows, one per pulse.
fn control_plane_brownout(mut world: SimWorld, t0: i64) -> Result<Built> {
    let mut windows = Vec::new();
    for p in 0..3 {
        let s = t0 + p * HOUR;
        let e = s + 20 * MINUTE;
        world.inject(FaultInjection::new(
            FaultKind::ControlPlaneOutage,
            FaultTarget::Global,
            s,
            e,
        ));
        windows.push(window(
            TruthScope::Global,
            DamageCategory::ControlPlane,
            s,
            e,
            Severity::Error,
        ));
    }
    Ok(Built { world, truth: GroundTruth::new(windows) })
}

/// A fleet-maintenance migration storm: eight VMs are live-migrated in
/// staggered 8-minute waves; each suffers a 3-minute stall (down) and a
/// 15-minute degraded tail while its disk cache re-warms.
fn live_migration_storm(mut world: SimWorld, cfg: &ScenarioConfig, t0: i64) -> Result<Built> {
    let movers = pick_vms(cfg.seed, 0x05, &world.fleet, 8);
    if movers.is_empty() {
        return Err(CdiError::invalid("empty fleet"));
    }
    let mut windows = Vec::new();
    for (i, vm) in movers.iter().enumerate() {
        let s = t0 + i as i64 * 8 * MINUTE;
        let stall_end = s + 3 * MINUTE;
        let tail_end = stall_end + 15 * MINUTE;
        world.inject(FaultInjection::new(FaultKind::VmDown, FaultTarget::Vm(*vm), s, stall_end));
        world.inject(FaultInjection::new(
            FaultKind::SlowIo { factor: 6.0 },
            FaultTarget::Vm(*vm),
            stall_end,
            tail_end,
        ));
        windows.push(window(
            TruthScope::Vm(*vm),
            DamageCategory::Unavailability,
            s,
            stall_end,
            Severity::Fatal,
        ));
        windows.push(window(
            TruthScope::Vm(*vm),
            DamageCategory::Performance,
            stall_end,
            tail_end,
            Severity::Critical,
        ));
    }
    Ok(Built { world, truth: GroundTruth::new(windows) })
}

/// A cloud disk degrades slowly: IO latency ramps through six 30-minute
/// steps from harmless to catastrophic. The early steps sit below the
/// expert extractor's 8 ms threshold, so detectors necessarily fire late —
/// this is the catalog's time-to-detect probe.
fn slow_burn_disk_degradation(mut world: SimWorld, cfg: &ScenarioConfig, t0: i64) -> Result<Built> {
    let vm = *pick_vms(cfg.seed, 0x06, &world.fleet, 1)
        .first()
        .ok_or_else(|| CdiError::invalid("empty fleet"))?;
    const FACTORS: [f64; 6] = [2.0, 3.0, 4.5, 6.0, 9.0, 12.0];
    for (i, factor) in FACTORS.iter().enumerate() {
        let s = t0 + i as i64 * 30 * MINUTE;
        world.inject(FaultInjection::new(
            FaultKind::SlowIo { factor: *factor },
            FaultTarget::Vm(vm),
            s,
            s + 30 * MINUTE,
        ));
    }
    let truth = GroundTruth::new(vec![window(
        TruthScope::Vm(vm),
        DamageCategory::Performance,
        t0,
        t0 + FACTORS.len() as i64 * 30 * MINUTE,
        Severity::Critical,
    )]);
    Ok(Built { world, truth })
}

/// A host NIC flaps in six 5-minute bursts, half an hour apart — the
/// paper's Example 1, repeated until someone replaces the optics. Each
/// burst is its own NC-scoped Performance label, probing repeated
/// detection of flapping recoveries rather than one long incident.
fn flapping_recoveries(mut world: SimWorld, cfg: &ScenarioConfig, t0: i64) -> Result<Built> {
    let ncs: Vec<NcId> = world.fleet.ncs().iter().map(|n| n.id).collect();
    let nc = *ncs
        .get(pick(cfg.seed, 0x07, ncs.len()))
        .ok_or_else(|| CdiError::invalid("fleet has no hosts"))?;
    let mut windows = Vec::new();
    for b in 0..6 {
        let s = t0 + b * 30 * MINUTE;
        let e = s + 5 * MINUTE;
        world.inject(FaultInjection::new(FaultKind::NicFlapping, FaultTarget::Nc(nc), s, e));
        windows.push(window(
            TruthScope::Nc(nc),
            DamageCategory::Performance,
            s,
            e,
            Severity::Error,
        ));
    }
    Ok(Built { world, truth: GroundTruth::new(windows) })
}

/// A top-of-rack switch fails: every host of one cluster sees 50% packet
/// loss simultaneously for 40 minutes — the correlated batch-outage shape
/// (BSODiag's motivation) a future diagnosis layer needs ground truth
/// for. The label is a single cluster-scoped window.
fn correlated_switch_failure(mut world: SimWorld, cfg: &ScenarioConfig, t0: i64) -> Result<Built> {
    let clusters = world.fleet.cluster_names();
    let cluster = clusters
        .get(pick(cfg.seed, 0x08, clusters.len()))
        .cloned()
        .ok_or_else(|| CdiError::invalid("fleet has no clusters"))?;
    let end = t0 + 40 * MINUTE;
    let n = world.inject_scope(
        FaultKind::PacketLoss { rate: 0.5 },
        &Scope::Cluster(cluster.clone()),
        t0,
        end,
    );
    if n == 0 {
        return Err(CdiError::invalid(format!("cluster `{cluster}` resolved to no hosts")));
    }
    let truth = GroundTruth::new(vec![window(
        TruthScope::Cluster(cluster),
        DamageCategory::Performance,
        t0,
        end,
        Severity::Error,
    )]);
    Ok(Built { world, truth })
}

/// A bad rollout marches through the deploy order: up to five clusters
/// each suffer 25 minutes of heavy CPU steal, starting 45 minutes apart.
/// The 45-minute stagger keeps consecutive clusters' damage in disjoint
/// 15-minute ticks even after the collector's 5-minute backward window
/// smears each fault one tick earlier, so a scope-aware diagnoser should
/// see a *sequence* of cluster-scoped outages, never an AZ-wide one.
/// Labels are per-cluster Performance windows in deploy order.
fn bad_rollout_wave(mut world: SimWorld, cfg: &ScenarioConfig, t0: i64) -> Result<Built> {
    let clusters = world.fleet.cluster_names();
    if clusters.is_empty() {
        return Err(CdiError::invalid("fleet has no clusters"));
    }
    // Deploy order: the sorted cluster list rotated by a seeded offset.
    let first = pick(cfg.seed, 0x09, clusters.len());
    let wave_len = clusters.len().min(5);
    let order: Vec<String> = (0..wave_len)
        .map(|i| clusters[(first + i) % clusters.len()].clone())
        .collect();
    let schedule = rollout_wave(
        &mut world,
        &order,
        FaultKind::CpuContention { steal: 0.6 },
        t0,
        45 * MINUTE,
        25 * MINUTE,
    );
    if schedule.len() != wave_len {
        return Err(CdiError::invalid("rollout wave hit an empty cluster"));
    }
    let windows = schedule
        .into_iter()
        .map(|(cluster, s, e)| {
            window(
                TruthScope::Cluster(cluster),
                DamageCategory::Performance,
                s,
                e,
                Severity::Error,
            )
        })
        .collect();
    Ok(Built { world, truth: GroundTruth::new(windows) })
}

/// A shared power domain fails: every host under one seed-chosen AZ goes
/// dark simultaneously for 35 minutes. Sits between the cluster-scoped
/// switch failure and the region-scoped failover in the hierarchy, so a
/// root-scope ranker must name the AZ — not one of its clusters, not the
/// whole region. The label is a single AZ-scoped Unavailability window.
fn power_domain_event(mut world: SimWorld, cfg: &ScenarioConfig, t0: i64) -> Result<Built> {
    let azs = world.az_names();
    let az = azs
        .get(pick(cfg.seed, 0x0A, azs.len()))
        .cloned()
        .ok_or_else(|| CdiError::invalid("fleet has no AZs"))?;
    let end = t0 + 35 * MINUTE;
    let n = fail_power_domain(&mut world, &az, t0, end);
    if n == 0 {
        return Err(CdiError::invalid(format!("AZ `{az}` resolved to no hosts")));
    }
    let truth = GroundTruth::new(vec![window(
        TruthScope::Az(az),
        DamageCategory::Unavailability,
        t0,
        end,
        Severity::Fatal,
    )]);
    Ok(Built { world, truth })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds_all_ten() {
        let cfg = ScenarioConfig::quick(20250);
        let all = catalog(&cfg).unwrap();
        assert_eq!(all.len(), 10);
        for s in &all {
            assert!(SCENARIO_NAMES.contains(&s.name));
            assert!(!s.truth.is_empty(), "{} has labels", s.name);
            assert!(!s.world.faults().is_empty(), "{} injects faults", s.name);
            assert_eq!((s.start, s.end), (0, DAY));
        }
    }

    #[test]
    fn unknown_scenario_is_a_typed_error() {
        assert!(build("nope", &ScenarioConfig::quick(1)).is_err());
    }

    #[test]
    fn incidents_fit_inside_their_slot() {
        for seed in [0u64, 1, 2, 3, 77, 20250] {
            let cfg = ScenarioConfig::quick(seed);
            let t0 = cfg.incident_start();
            for s in catalog(&cfg).unwrap() {
                let hull = s.truth.span().unwrap();
                assert!(hull.start >= t0, "{} starts early", s.name);
                assert!(
                    hull.end <= t0 + SLOT_STRIDE,
                    "{}: hull end {} exceeds slot end {}",
                    s.name,
                    hull.end,
                    t0 + SLOT_STRIDE
                );
                assert!(hull.end <= DAY);
            }
        }
    }

    #[test]
    fn same_seed_rebuilds_identically() {
        let cfg = ScenarioConfig::quick(42);
        for name in SCENARIO_NAMES {
            let a = build(name, &cfg).unwrap();
            let b = build(name, &cfg).unwrap();
            assert_eq!(a.truth, b.truth, "{name}");
            assert_eq!(a.world.faults(), b.world.faults(), "{name}");
        }
    }

    #[test]
    fn different_slots_are_time_disjoint() {
        // Seeds 1 and 2 land in different slots.
        let a = ScenarioConfig::quick(1);
        let b = ScenarioConfig::quick(2);
        assert_ne!(a.slot(), b.slot());
        for name in SCENARIO_NAMES {
            let ta = build(name, &a).unwrap().truth;
            let tb = build(name, &b).unwrap().truth;
            for wa in ta.windows() {
                for wb in tb.windows() {
                    assert!(
                        !wa.range.overlaps(&wb.range),
                        "{name}: {:?} overlaps {:?}",
                        wa.range,
                        wb.range
                    );
                }
            }
        }
    }

    #[test]
    fn truth_scopes_resolve_to_real_vms() {
        let cfg = ScenarioConfig::new(20250);
        for s in catalog(&cfg).unwrap() {
            for w in s.truth.windows() {
                assert!(
                    !w.scope.vms(&s.world.fleet).is_empty(),
                    "{}: scope {} covers no VMs",
                    s.name,
                    w.scope
                );
            }
        }
    }
}
