//! The scenario × detector score matrix and its regression floors.
//!
//! [`run_matrix`] prepares every catalog scenario once, runs every
//! detector over each, and scores the result into a [`ScoreMatrix`] — the
//! deterministic JSON artifact (`BENCH_PR8.json`) CI re-generates and
//! byte-compares across runs. [`pinned_floors`] carries the per-cell F1
//! floors: pinned just below the currently observed scores so any change
//! that degrades a detector on a scenario it used to handle fails the
//! gate, while honest improvements pass.

use cdi_core::error::Result;
use serde::{Deserialize, Serialize};

use crate::catalog::{catalog, ScenarioConfig};
use crate::detector::{CdiThreshold, Detector, KSigmaDetector, SurgeDetector};
use crate::run::ScenarioRun;
use crate::score::{score, Score, ScoreConfig};

/// One scored cell of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Scenario name.
    pub scenario: String,
    /// Detector name.
    pub detector: String,
    /// The scores.
    pub score: Score,
}

/// The full scenario × detector result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreMatrix {
    /// Seed the catalog was built with.
    pub seed: u64,
    /// Whether the reduced quick-mode fleet was used.
    pub quick: bool,
    /// Tick size (ms) — also the matching slack.
    pub tick_ms: i64,
    /// Cells in scenario-major, detector-minor order.
    pub cells: Vec<MatrixCell>,
}

impl ScoreMatrix {
    /// Look up one cell.
    pub fn cell(&self, scenario: &str, detector: &str) -> Option<&MatrixCell> {
        self.cells.iter().find(|c| c.scenario == scenario && c.detector == detector)
    }
}

/// The three standard adapters every matrix run scores: the live-path
/// CDI-threshold baseline, K-Sigma, and surge alerting.
pub fn default_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(CdiThreshold::default()),
        Box::new(KSigmaDetector::default()),
        Box::new(SurgeDetector::default()),
    ]
}

/// Build the catalog for `cfg`, prepare each scenario once, and score
/// every detector against every scenario. Cells come out in
/// scenario-major order (the catalog's alphabetical order), detectors in
/// the order given.
pub fn run_matrix(cfg: &ScenarioConfig, detectors: &[Box<dyn Detector>]) -> Result<ScoreMatrix> {
    let quick = cfg.quick;
    let mut cells = Vec::new();
    for scenario in catalog(cfg)? {
        let run = ScenarioRun::prepare(&scenario)?;
        // Slack = one tick (detections are tick-granular); grace = the
        // collector step (windowed derivation is backward-looking).
        let score_cfg =
            ScoreConfig { slack_ms: scenario.tick_ms, grace_ms: 5 * simfleet::scenario::MINUTE };
        for d in detectors {
            let detections = d.detect(&run)?;
            cells.push(MatrixCell {
                scenario: scenario.name.to_string(),
                detector: d.name().to_string(),
                score: score(&scenario.truth, &detections, run.fleet(), &score_cfg),
            });
        }
    }
    Ok(ScoreMatrix { seed: cfg.seed, quick, tick_ms: cfg.tick_ms, cells })
}

/// A per-cell regression floor.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Floor {
    /// Scenario name.
    pub scenario: &'static str,
    /// Detector name.
    pub detector: &'static str,
    /// Minimum acceptable F1.
    pub min_f1: f64,
}

const fn floor(scenario: &'static str, detector: &'static str, min_f1: f64) -> Floor {
    Floor { scenario, detector, min_f1 }
}

/// The pinned floors for the canonical seed (20250), full and quick
/// fleets. Values sit just below the observed scores of the current
/// implementation; `experiments scenarios` and CI fail when any cell
/// drops under its floor.
///
/// The floors encode the expected *shape* of the matrix, not perfection:
/// the CDI-threshold baseline should be strong everywhere its categories
/// see damage, K-Sigma should catch every abrupt per-VM incident but is
/// blind to the control plane (its series is damage-fraction only — the
/// brownout floor is 0), and surge trades precision for fleet-level
/// recall.
pub fn pinned_floors(quick: bool) -> Vec<Floor> {
    if quick {
        // Observed at seed 20250 (quick): cdi-threshold and ksigma score
        // 1.0 everywhere except the migration storm (0.897 — 3-minute
        // stalls can fall between 5-minute samples). No surge floors: the
        // 8-VM fleet cannot reach the production `min_count` of the surge
        // scan, by design. ksigma stays ungated on the two correlated
        // rollout/power scenarios — it alerts, but per VM, with no notion
        // of the blast radius (the gap the outage-diag floors cover).
        vec![
            floor("bad-rollout-wave", "cdi-threshold", 0.95),
            floor("control-plane-brownout", "cdi-threshold", 0.95),
            floor("correlated-switch-failure", "cdi-threshold", 0.95),
            floor("ddos-blackhole-wave", "cdi-threshold", 0.95),
            floor("flapping-recoveries", "cdi-threshold", 0.95),
            floor("live-migration-storm", "cdi-threshold", 0.8),
            floor("noisy-neighbor-saturation", "cdi-threshold", 0.95),
            floor("power-domain-event", "cdi-threshold", 0.95),
            floor("regional-failover", "cdi-threshold", 0.95),
            floor("slow-burn-disk-degradation", "cdi-threshold", 0.95),
            floor("control-plane-brownout", "ksigma", 0.95),
            floor("correlated-switch-failure", "ksigma", 0.95),
            floor("ddos-blackhole-wave", "ksigma", 0.95),
            floor("regional-failover", "ksigma", 0.95),
        ]
    } else {
        // Observed at seed 20250 (full): background control-plane noise
        // costs a little precision fleet-wide; the migration storm's
        // sub-sample stalls cost cdi-threshold recall; surge sees only
        // the fleet-broad incidents (its per-VM-staggered cells are
        // deliberately ungated — that blindness is the finding). surge
        // and ksigma also stay ungated on bad-rollout-wave and
        // power-domain-event: they fire there, but without scope — only
        // outage-diag names the blast radius, so the gates live with it.
        vec![
            floor("bad-rollout-wave", "cdi-threshold", 0.9),
            floor("control-plane-brownout", "cdi-threshold", 0.95),
            floor("correlated-switch-failure", "cdi-threshold", 0.9),
            floor("ddos-blackhole-wave", "cdi-threshold", 0.9),
            floor("power-domain-event", "cdi-threshold", 0.9),
            floor("flapping-recoveries", "cdi-threshold", 0.9),
            floor("live-migration-storm", "cdi-threshold", 0.75),
            floor("noisy-neighbor-saturation", "cdi-threshold", 0.9),
            floor("regional-failover", "cdi-threshold", 0.9),
            floor("slow-burn-disk-degradation", "cdi-threshold", 0.8),
            floor("control-plane-brownout", "ksigma", 0.95),
            floor("correlated-switch-failure", "ksigma", 0.9),
            floor("ddos-blackhole-wave", "ksigma", 0.85),
            floor("flapping-recoveries", "ksigma", 0.9),
            floor("live-migration-storm", "ksigma", 0.85),
            floor("noisy-neighbor-saturation", "ksigma", 0.9),
            floor("regional-failover", "ksigma", 0.9),
            floor("slow-burn-disk-degradation", "ksigma", 0.8),
            floor("control-plane-brownout", "surge", 0.9),
            floor("correlated-switch-failure", "surge", 0.9),
            floor("noisy-neighbor-saturation", "surge", 0.9),
            floor("regional-failover", "surge", 0.9),
        ]
    }
}

/// Check a matrix against floors. Returns one human-readable violation
/// per breached cell (empty = pass). A floor whose cell is missing from
/// the matrix is itself a violation — renaming a scenario must not
/// silently disarm its gate.
pub fn check_floors(matrix: &ScoreMatrix, floors: &[Floor]) -> Vec<String> {
    let mut violations = Vec::new();
    for f in floors {
        match matrix.cell(f.scenario, f.detector) {
            None => violations.push(format!(
                "{} × {}: cell missing from matrix (floor {})",
                f.scenario, f.detector, f.min_f1
            )),
            Some(cell) => {
                if cell.score.f1 < f.min_f1 {
                    violations.push(format!(
                        "{} × {}: F1 {:.4} below floor {:.4} (p {:.4}, r {:.4})",
                        f.scenario,
                        f.detector,
                        cell.score.f1,
                        f.min_f1,
                        cell.score.precision,
                        cell.score.recall
                    ));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::GroundTruth;

    fn dummy_matrix() -> ScoreMatrix {
        let s = score(
            &GroundTruth::new(vec![]),
            &[],
            &simfleet::topology::Fleet::build(&ScenarioConfig::quick(0).fleet),
            &ScoreConfig::default(),
        );
        ScoreMatrix {
            seed: 0,
            quick: true,
            tick_ms: 1,
            cells: vec![MatrixCell {
                scenario: "regional-failover".into(),
                detector: "cdi-threshold".into(),
                score: s,
            }],
        }
    }

    #[test]
    fn check_floors_flags_low_and_missing_cells() {
        let mut m = dummy_matrix();
        // Perfect vacuous score passes any floor.
        let pass = check_floors(&m, &[floor("regional-failover", "cdi-threshold", 0.9)]);
        assert!(pass.is_empty(), "{pass:?}");
        // Degrade the cell below the floor.
        m.cells[0].score.f1 = 0.1;
        let fail = check_floors(&m, &[floor("regional-failover", "cdi-threshold", 0.9)]);
        assert_eq!(fail.len(), 1);
        assert!(fail[0].contains("below floor"));
        // A missing cell is a violation, not a silent pass.
        let missing = check_floors(&m, &[floor("nope", "cdi-threshold", 0.1)]);
        assert_eq!(missing.len(), 1);
        assert!(missing[0].contains("missing"));
    }

    #[test]
    fn floors_reference_known_names() {
        for quick in [true, false] {
            for f in pinned_floors(quick) {
                assert!(
                    crate::catalog::SCENARIO_NAMES.contains(&f.scenario),
                    "floor references unknown scenario {}",
                    f.scenario
                );
                assert!(["cdi-threshold", "ksigma", "surge"].contains(&f.detector));
                assert!((0.0..=1.0).contains(&f.min_f1));
            }
        }
    }
}
