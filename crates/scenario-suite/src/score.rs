//! Matching detections against labeled windows and turning the match into
//! precision / recall / F1 / time-to-detect.
//!
//! ## Matching semantics (pinned by `tests/scoring_fixtures.rs`)
//!
//! A detection carries a point timestamp plus a slack horizon
//! ([`ScoreConfig::slack_ms`], normally one tick): it *claims* the
//! half-open interval `[time, time + max(slack, 1))`. A detection matches
//! a window iff
//!
//! 1. its claimed interval overlaps the window's half-open range, with
//!    the window start pulled back by [`ScoreConfig::grace_ms`] (so a
//!    detection exactly at `start` matches, one exactly at `end` with zero
//!    slack does not),
//! 2. its scope shares at least one VM with the window's scope under the
//!    scenario fleet (a region-wide label is satisfied by a detection on
//!    any VM inside it), and
//! 3. its category, when it states one, equals the window's (a
//!    category-free detection matches any category).
//!
//! Precision is over detections (`matched / emitted`; vacuously 1 when
//! nothing was emitted), recall over windows (`detected / labeled`;
//! vacuously 1 when nothing was labeled), F1 their harmonic mean (0 when
//! both are 0). Time-to-detect of a window is the earliest matching
//! detection's time minus the window start, clamped at 0 for detections
//! whose slack reached *forward* into the window; the reported value is
//! the mean over detected windows only (`None` when nothing was
//! detected).

use serde::{Deserialize, Serialize};
use simfleet::faults::SimRange;
use simfleet::topology::Fleet;

use crate::detector::Detection;
use crate::truth::GroundTruth;

/// Matching parameters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ScoreConfig {
    /// How far past its timestamp a detection claims (ms). The harness
    /// passes the tick size: a tick-granular detector that fires on the
    /// tick *containing* a short burst still matches it.
    pub slack_ms: i64,
    /// Backward grace on window starts (ms): a window `[s, e)` accepts
    /// detections as if it started at `s − grace`. The harness passes the
    /// collector step, because windowed period derivation is
    /// backward-looking (`[t − window, t]`): the first in-fault sample
    /// legitimately attributes damage to the collector window *preceding*
    /// the fault start.
    pub grace_ms: i64,
}

/// A scored scenario × detector cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Score {
    /// Labeled windows in the ground truth.
    pub total_windows: usize,
    /// Windows with at least one matching detection.
    pub detected_windows: usize,
    /// Detections emitted.
    pub detections: usize,
    /// Detections matching at least one window.
    pub matched_detections: usize,
    /// `matched_detections / detections` (1 when no detections).
    pub precision: f64,
    /// `detected_windows / total_windows` (1 when no windows).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
    /// Mean over detected windows of `max(0, first matching detection −
    /// window start)` in ms; `None` when no window was detected.
    pub mean_ttd_ms: Option<f64>,
}

fn matches(d: &Detection, w: &crate::truth::DamageWindow, fleet: &Fleet, cfg: &ScoreConfig) -> bool {
    let claimed = SimRange::new(d.time, d.time + cfg.slack_ms.max(1));
    let accepted = SimRange::new(w.range.start - cfg.grace_ms, w.range.end);
    if !claimed.overlaps(&accepted) {
        return false;
    }
    if let Some(cat) = d.category {
        if cat != w.category {
            return false;
        }
    }
    d.scope.overlaps(&w.scope, fleet)
}

/// Score a detection list against a ground truth over a fleet.
pub fn score(
    truth: &GroundTruth,
    detections: &[Detection],
    fleet: &Fleet,
    cfg: &ScoreConfig,
) -> Score {
    let mut matched_detections = 0usize;
    let mut detected_windows = 0usize;
    let mut ttds: Vec<f64> = Vec::new();
    for d in detections {
        if truth.windows().iter().any(|w| matches(d, w, fleet, cfg)) {
            matched_detections += 1;
        }
    }
    for w in truth.windows() {
        let first = detections
            .iter()
            .filter(|d| matches(d, w, fleet, cfg))
            .map(|d| d.time)
            .min();
        if let Some(t) = first {
            detected_windows += 1;
            ttds.push(cdi_core::num::ms_f64((t - w.range.start).max(0)));
        }
    }
    let precision = if detections.is_empty() {
        1.0
    } else {
        cdi_core::num::count_f64(matched_detections) / cdi_core::num::count_f64(detections.len())
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        cdi_core::num::count_f64(detected_windows) / cdi_core::num::count_f64(truth.len())
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    let mean_ttd_ms = if ttds.is_empty() {
        None
    } else {
        Some(ttds.iter().sum::<f64>() / cdi_core::num::count_f64(ttds.len()))
    };
    Score {
        total_windows: truth.len(),
        detected_windows,
        detections: detections.len(),
        matched_detections,
        precision,
        recall,
        f1,
        mean_ttd_ms,
    }
}
