//! # scenario-suite — scenario-oriented stability evaluation
//!
//! The paper's core claim is that stability must be evaluated across *many
//! kinds* of degradation, not just downtime. This crate turns that claim
//! into a regression-gated benchmark: a catalog of named, seeded,
//! parameterized failure scenarios — each emitting a deterministic event
//! stream **and** a labeled [`GroundTruth`](truth::GroundTruth) of damage
//! windows — plus a scoring harness that runs any detector implementing the
//! small [`Detector`](detector::Detector) trait against every scenario and
//! reports precision / recall / F1 / time-to-detect per cell.
//!
//! - [`truth`] — labeled damage windows: scope (VM → NC → cluster → AZ →
//!   region → global), damage category, time range, expected severity.
//! - [`catalog`] — the ten scenarios (regional failover, DDoS blackhole
//!   wave, noisy neighbor, control-plane brownout, live-migration storm,
//!   slow-burn disk degradation, flapping recoveries, correlated switch
//!   failure, bad-rollout wave, power-domain event) and the seed-slot
//!   placement scheme that makes different seeds produce time-disjoint
//!   incidents.
//! - [`run`] — a prepared scenario: extracted events, the live
//!   [`LiveFeed`](cloudbot::feed::LiveFeed), and the batch per-tick damage
//!   table every detector can share.
//! - [`table`] — per-VM, per-category, per-tick damage-fraction tables,
//!   computed either from raw [`CdiAccumulator`](cdi_core::streaming) triples
//!   (the batch path) or through a sharded live
//!   [`CdiService`](cdi_serve::CdiService) (the serving path). The two are
//!   the batch/live parity pair of `tests/serve_parity.rs`.
//! - [`detector`] — the trait plus three adapters: a CDI-threshold baseline
//!   over the live stream, `statskit`'s K-Sigma on per-VM damage series, and
//!   `cloudbot`'s event-surge alerting.
//! - [`score`] — the matching and scoring math (window `[start, end)`
//!   semantics, scope overlap through the fleet, optional slack).
//! - [`harness`] — the scenario × detector [`ScoreMatrix`](harness::ScoreMatrix)
//!   with pinned per-cell regression floors (`BENCH_PR8.json`).
//!
//! Everything is clock-free and seeded (stability-lint R3) and panic-free
//! outside tests (R1): failures travel as [`cdi_core::error::CdiError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod detector;
pub mod harness;
pub mod run;
pub mod score;
pub mod table;
pub mod truth;

pub use catalog::{build, catalog, Scenario, ScenarioConfig, SCENARIO_NAMES};
pub use detector::{CdiThreshold, Detection, Detector, KSigmaDetector, SurgeDetector};
pub use harness::{
    check_floors, default_detectors, pinned_floors, run_matrix, Floor, MatrixCell, ScoreMatrix,
};
pub use run::ScenarioRun;
pub use score::{score, Score, ScoreConfig};
pub use truth::{DamageWindow, GroundTruth, TruthScope};
