//! Labeled ground truth: who was damaged, how, when, and how badly.
//!
//! Every scenario in the [`catalog`](crate::catalog) emits a
//! [`GroundTruth`] alongside its event stream — the oracle's answer sheet a
//! [`Detector`](crate::detector::Detector) is scored against. A label is a
//! [`DamageWindow`]: a topology scope (which can be a single VM, a whole
//! host, or an entire region), the damaged stability category (per the
//! paper's Definition 1), a half-open time range, and the expected
//! severity. Scopes are resolved against the fleet placement at scoring
//! time, so a detection on any VM inside a region-scoped window counts.

use cdi_core::event::Severity;
use serde::{Deserialize, Serialize};
use simfleet::faults::{DamageCategory, SimRange};
use simfleet::topology::{Fleet, NcId, VmId};
use simfleet::Scope;

/// Where a damage label applies. A superset of [`simfleet::Scope`] with a
/// `Global` level for fleet-wide control-plane incidents.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TruthScope {
    /// A single VM.
    Vm(VmId),
    /// One physical host and everything on it.
    Nc(NcId),
    /// A cluster, by name.
    Cluster(String),
    /// An availability zone, by name.
    Az(String),
    /// A whole region, by name.
    Region(String),
    /// The entire fleet.
    Global,
}

impl TruthScope {
    /// The VMs this scope covers under `fleet`'s placement, ascending.
    /// Unknown names and ids cover nothing (the empty-rollup convention of
    /// [`Fleet::vms_in`]).
    pub fn vms(&self, fleet: &Fleet) -> Vec<VmId> {
        match self {
            TruthScope::Vm(id) => fleet.vms_in(&Scope::Vm(*id)),
            TruthScope::Nc(id) => fleet.vms_in(&Scope::Nc(*id)),
            TruthScope::Cluster(name) => fleet.vms_in(&Scope::Cluster(name.clone())),
            TruthScope::Az(name) => fleet.vms_in(&Scope::Az(name.clone())),
            TruthScope::Region(name) => fleet.vms_in(&Scope::Region(name.clone())),
            TruthScope::Global => {
                let mut all: Vec<VmId> = fleet.vms().iter().map(|v| v.id).collect();
                all.sort_unstable();
                all
            }
        }
    }

    /// Whether two scopes cover at least one common VM under `fleet`.
    /// `Global` overlaps everything, including another `Global`.
    pub fn overlaps(&self, other: &TruthScope, fleet: &Fleet) -> bool {
        if matches!(self, TruthScope::Global) || matches!(other, TruthScope::Global) {
            return true;
        }
        let a = self.vms(fleet);
        let b = other.vms(fleet);
        // Both sorted ascending: a single merge walk finds any intersection.
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// A total-order key for deterministic sorting and display: variant
    /// rank, numeric id, name.
    pub fn sort_key(&self) -> (u8, u64, &str) {
        match self {
            TruthScope::Vm(id) => (0, *id, ""),
            TruthScope::Nc(id) => (1, *id, ""),
            TruthScope::Cluster(name) => (2, 0, name),
            TruthScope::Az(name) => (3, 0, name),
            TruthScope::Region(name) => (4, 0, name),
            TruthScope::Global => (5, 0, ""),
        }
    }
}

impl std::fmt::Display for TruthScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TruthScope::Vm(id) => write!(f, "vm-{id}"),
            TruthScope::Nc(id) => write!(f, "nc-{id}"),
            TruthScope::Cluster(name) => write!(f, "cluster-{name}"),
            TruthScope::Az(name) => write!(f, "az-{name}"),
            TruthScope::Region(name) => write!(f, "region-{name}"),
            TruthScope::Global => write!(f, "global"),
        }
    }
}

/// One labeled damage interval: the unit a detector is scored against.
///
/// The range is half-open `[start, end)`, matching [`SimRange`] and the
/// rest of the pipeline: a detection exactly at `start` is inside the
/// window, one exactly at `end` is outside.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DamageWindow {
    /// Where the damage lands.
    pub scope: TruthScope,
    /// Which stability category is damaged.
    pub category: DamageCategory,
    /// When the damage is active, half-open.
    pub range: SimRange,
    /// Expected severity of the extracted events.
    pub severity: Severity,
}

/// The full answer sheet of one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    windows: Vec<DamageWindow>,
}

/// Deterministic ordering rank of a category (catalog order of
/// [`cdi_core::event::Category::ALL`]).
pub fn category_rank(category: DamageCategory) -> u8 {
    match category {
        DamageCategory::Unavailability => 0,
        DamageCategory::Performance => 1,
        DamageCategory::ControlPlane => 2,
    }
}

impl GroundTruth {
    /// Build a ground truth; windows are sorted into a deterministic total
    /// order (start, end, scope, category) so serializations are stable
    /// regardless of construction order.
    pub fn new(mut windows: Vec<DamageWindow>) -> GroundTruth {
        windows.sort_by(|a, b| {
            (a.range.start, a.range.end, a.scope.sort_key(), category_rank(a.category)).cmp(&(
                b.range.start,
                b.range.end,
                b.scope.sort_key(),
                category_rank(b.category),
            ))
        });
        GroundTruth { windows }
    }

    /// The labeled windows, in deterministic order.
    pub fn windows(&self) -> &[DamageWindow] {
        &self.windows
    }

    /// Number of labeled windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether there are no labels (a healthy-world scenario).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The hull `[min start, max end)` of all windows, if any.
    pub fn span(&self) -> Option<SimRange> {
        let start = self.windows.iter().map(|w| w.range.start).min()?;
        let end = self.windows.iter().map(|w| w.range.end).max()?;
        Some(SimRange::new(start, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfleet::topology::{DeploymentArch, FleetConfig};

    fn fleet() -> Fleet {
        Fleet::build(&FleetConfig {
            regions: vec!["r1".into(), "r2".into()],
            azs_per_region: 2,
            clusters_per_az: 1,
            ncs_per_cluster: 2,
            vms_per_nc: 2,
            nc_cores: 8,
            machine_models: vec!["m".into()],
            arch: DeploymentArch::Hybrid,
        })
    }

    #[test]
    fn scope_resolution_matches_topology() {
        let f = fleet();
        assert_eq!(TruthScope::Vm(3).vms(&f), vec![3]);
        assert_eq!(TruthScope::Nc(0).vms(&f).len(), 2);
        assert_eq!(TruthScope::Region("r1".into()).vms(&f).len(), 8);
        assert_eq!(TruthScope::Global.vms(&f).len(), 16);
        assert!(TruthScope::Region("nope".into()).vms(&f).is_empty());
    }

    #[test]
    fn overlap_walks_the_hierarchy() {
        let f = fleet();
        let vm0_host = f.vm(0).map(|v| v.nc).unwrap_or_default();
        assert!(TruthScope::Vm(0).overlaps(&TruthScope::Nc(vm0_host), &f));
        assert!(TruthScope::Vm(0).overlaps(&TruthScope::Region("r1".into()), &f));
        assert!(!TruthScope::Region("r1".into()).overlaps(&TruthScope::Region("r2".into()), &f));
        assert!(TruthScope::Global.overlaps(&TruthScope::Vm(9999), &f), "global covers all");
        assert!(!TruthScope::Vm(0).overlaps(&TruthScope::Vm(1), &f));
    }

    #[test]
    fn ground_truth_sorts_deterministically() {
        let w1 = DamageWindow {
            scope: TruthScope::Vm(5),
            category: DamageCategory::Performance,
            range: SimRange::new(100, 200),
            severity: Severity::Error,
        };
        let w2 = DamageWindow {
            scope: TruthScope::Vm(1),
            category: DamageCategory::Unavailability,
            range: SimRange::new(50, 80),
            severity: Severity::Fatal,
        };
        let a = GroundTruth::new(vec![w1.clone(), w2.clone()]);
        let b = GroundTruth::new(vec![w2, w1]);
        assert_eq!(a, b);
        assert_eq!(a.windows()[0].range.start, 50);
        assert_eq!(a.span(), Some(SimRange::new(50, 200)));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(GroundTruth::new(vec![]).span().is_none());
    }

    #[test]
    fn scope_display_is_stable() {
        assert_eq!(TruthScope::Vm(7).to_string(), "vm-7");
        assert_eq!(TruthScope::Global.to_string(), "global");
        assert_eq!(TruthScope::Region("r1".into()).to_string(), "region-r1");
    }
}
