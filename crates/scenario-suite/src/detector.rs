//! The [`Detector`] trait and the three built-in adapters.
//!
//! A detector sees only what production would see — the extracted event
//! stream, the live feed, and the per-tick damage tables — never the
//! ground truth. Each adapter wraps an existing detection surface of the
//! repo:
//!
//! - [`CdiThreshold`] — the paper-native baseline: flag any tick whose
//!   damage fraction exceeds a threshold, computed either on the batch
//!   accumulator table or by replaying the feed through a sharded live
//!   [`CdiService`](cdi_serve::CdiService).
//! - [`KSigmaDetector`] — `statskit`'s rolling K-Sigma band over each
//!   VM's total damage-fraction series (spikes only; dips are recoveries).
//! - [`SurgeDetector`] — `cloudbot`'s event-surge alerting, a fleet-scoped
//!   signal with no per-VM attribution.

use cdi_core::error::{CdiError, Result};
use cdi_core::event::Category;
use cloudbot::surge::{scan, SurgeConfig};
use serde::{Deserialize, Serialize};
use simfleet::faults::DamageCategory;
use statskit::anomaly::{AnomalyKind, KSigma};

use crate::run::ScenarioRun;
use crate::table::{category_index, live_table};
use crate::truth::{category_rank, TruthScope};

/// One detector firing: where, when, and (optionally) which category it
/// blames. `category: None` means the detector makes no category claim
/// and matches windows of any category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The scope the detector points at.
    pub scope: TruthScope,
    /// Firing timestamp (ms); tick-granular detectors use the tick start.
    pub time: i64,
    /// Blamed stability category, if the detector attributes one.
    pub category: Option<DamageCategory>,
}

/// Anything that can be scored by the harness.
pub trait Detector {
    /// Stable name used in the score matrix and the pinned floors.
    fn name(&self) -> &'static str;
    /// Run over a prepared scenario and emit detections in deterministic
    /// order.
    fn detect(&self, run: &ScenarioRun) -> Result<Vec<Detection>>;
}

impl std::fmt::Debug for dyn Detector + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Detector({})", self.name())
    }
}

/// Sort detections into the deterministic order all adapters emit:
/// (time, scope, category rank).
fn sort_detections(out: &mut [Detection]) {
    out.sort_by(|a, b| {
        (a.time, a.scope.sort_key(), a.category.map(category_rank))
            .cmp(&(b.time, b.scope.sort_key(), b.category.map(category_rank)))
    });
}

fn damage_category(c: Category) -> DamageCategory {
    match c {
        Category::Unavailability => DamageCategory::Unavailability,
        Category::Performance => DamageCategory::Performance,
        Category::ControlPlane => DamageCategory::ControlPlane,
    }
}

/// The CDI-threshold baseline: flag every (VM, tick, category) whose
/// damage fraction exceeds the threshold.
#[derive(Debug, Clone)]
pub struct CdiThreshold {
    /// Per-tick damage fraction above which a tick is flagged.
    pub threshold: f64,
    /// `None`: read the prepared batch table. `Some(n)`: replay the live
    /// feed through an `n`-shard [`CdiService`](cdi_serve::CdiService) and
    /// read the recovered table — same detector, serving-path evaluation.
    pub shards: Option<usize>,
}

impl Default for CdiThreshold {
    fn default() -> Self {
        // 0.05 ≈ 45 s of fatal damage per 15-minute tick: well above the
        // quiet-world noise floor, well below every catalog incident.
        CdiThreshold { threshold: 0.05, shards: Some(2) }
    }
}

impl Detector for CdiThreshold {
    fn name(&self) -> &'static str {
        "cdi-threshold"
    }

    fn detect(&self, run: &ScenarioRun) -> Result<Vec<Detection>> {
        let live;
        let table = match self.shards {
            None => &run.batch,
            Some(n) => {
                live = live_table(&run.scenario, &run.feed, n)?;
                &live
            }
        };
        let mut out = Vec::new();
        for vm in table.vms() {
            if let Some(row) = table.row(vm) {
                for (i, cell) in row.iter().enumerate() {
                    for cat in Category::ALL {
                        if cell[category_index(cat)] > self.threshold {
                            out.push(Detection {
                                scope: TruthScope::Vm(vm),
                                time: run.tick_start(i),
                                category: Some(damage_category(cat)),
                            });
                        }
                    }
                }
            }
        }
        sort_detections(&mut out);
        Ok(out)
    }
}

/// `statskit` K-Sigma over each VM's total damage-fraction series.
///
/// The first `window` ticks are calibration, so the catalog places every
/// incident after `SLOT_BASE` — later than `window × tick` — to keep the
/// detector honest rather than structurally blind.
#[derive(Debug, Clone)]
pub struct KSigmaDetector {
    /// Band width in sigmas.
    pub k: f64,
    /// Trailing window length (ticks).
    pub window: usize,
    /// Variance floor, so the near-zero quiet series still yields a
    /// meaningful band.
    pub min_sigma: f64,
}

impl Default for KSigmaDetector {
    fn default() -> Self {
        KSigmaDetector { k: 4.0, window: 12, min_sigma: 0.02 }
    }
}

impl Detector for KSigmaDetector {
    fn name(&self) -> &'static str {
        "ksigma"
    }

    fn detect(&self, run: &ScenarioRun) -> Result<Vec<Detection>> {
        let mut out = Vec::new();
        for vm in run.batch.vms() {
            if let Some(row) = run.batch.row(vm) {
                let series: Vec<f64> =
                    row.iter().map(|c| c[0] + c[1] + c[2]).collect();
                let detector = KSigma::new(self.k, self.window, self.min_sigma)
                    .map_err(|e| CdiError::invalid(format!("ksigma config: {e}")))?;
                for a in detector.detect(&series) {
                    if a.kind == AnomalyKind::Spike {
                        out.push(Detection {
                            scope: TruthScope::Vm(vm),
                            time: run.tick_start(a.index),
                            category: None,
                        });
                    }
                }
            }
        }
        sort_detections(&mut out);
        Ok(out)
    }
}

/// `cloudbot` event-surge alerting: fleet-scoped, category-free.
///
/// Surges attribute to the whole fleet (an alert names an event, not a
/// VM), so every detection is `Global` — precision against narrow-scoped
/// windows is this adapter's known weakness and exactly what the matrix
/// should show.
#[derive(Debug, Clone, Default)]
pub struct SurgeDetector {
    /// The underlying surge-scan configuration.
    pub config: SurgeConfig,
}

impl Detector for SurgeDetector {
    fn name(&self) -> &'static str {
        "surge"
    }

    fn detect(&self, run: &ScenarioRun) -> Result<Vec<Detection>> {
        let alerts = scan(&run.events, run.scenario.start, run.scenario.end, &self.config);
        let mut out: Vec<Detection> = alerts
            .into_iter()
            .map(|a| Detection {
                scope: TruthScope::Global,
                time: a.window_start,
                category: None,
            })
            .collect();
        sort_detections(&mut out);
        out.dedup();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{build, ScenarioConfig};

    #[test]
    fn cdi_threshold_finds_the_regional_outage() {
        let cfg = ScenarioConfig::quick(0);
        let s = build("regional-failover", &cfg).unwrap();
        let run = ScenarioRun::prepare(&s).unwrap();
        let batch = CdiThreshold { threshold: 0.05, shards: None };
        let dets = batch.detect(&run).unwrap();
        assert!(!dets.is_empty());
        let hull = s.truth.span().unwrap();
        let unavail: Vec<&Detection> = dets
            .iter()
            .filter(|d| d.category == Some(DamageCategory::Unavailability))
            .collect();
        assert!(!unavail.is_empty());
        // Windowed derivation looks back one collector step, so the tick
        // touching `hull.start` may already carry damage.
        let grace = 5 * simfleet::scenario::MINUTE;
        for d in &unavail {
            assert!(
                d.time + s.tick_ms + grace > hull.start && d.time < hull.end,
                "unavailability detection at {} outside {:?}",
                d.time,
                hull
            );
        }
    }

    #[test]
    fn live_and_batch_threshold_agree() {
        let cfg = ScenarioConfig::quick(1);
        let s = build("live-migration-storm", &cfg).unwrap();
        let run = ScenarioRun::prepare(&s).unwrap();
        let batch = CdiThreshold { threshold: 0.05, shards: None }.detect(&run).unwrap();
        let live = CdiThreshold { threshold: 0.05, shards: Some(3) }.detect(&run).unwrap();
        assert_eq!(batch, live);
    }

    #[test]
    fn ksigma_fires_on_spikes_only_after_calibration() {
        let cfg = ScenarioConfig::quick(2);
        let s = build("correlated-switch-failure", &cfg).unwrap();
        let run = ScenarioRun::prepare(&s).unwrap();
        let dets = KSigmaDetector::default().detect(&run).unwrap();
        assert!(!dets.is_empty(), "a 50% loss cluster outage must spike");
        let calibration_end = s.start + 12 * s.tick_ms;
        assert!(dets.iter().all(|d| d.time >= calibration_end));
        assert!(dets.iter().all(|d| d.category.is_none()));
    }

    #[test]
    fn surge_alerts_are_global_and_deduped() {
        let cfg = ScenarioConfig::quick(3);
        let s = build("regional-failover", &cfg).unwrap();
        let run = ScenarioRun::prepare(&s).unwrap();
        let dets = SurgeDetector::default().detect(&run).unwrap();
        assert!(dets.iter().all(|d| d.scope == TruthScope::Global));
        let mut times: Vec<i64> = dets.iter().map(|d| d.time).collect();
        times.dedup();
        assert_eq!(times.len(), dets.len(), "one detection per surging window");
    }
}
