//! Per-tick damage tables: the detector-facing view of a scenario.
//!
//! A [`TickTable`] holds, for every VM and every tick of the evaluation
//! window, the damage *fraction* of the tick per stability category —
//! `envelope integral over the tick / tick length`, a value in `[0, 1]`
//! (the per-tick differential of the CDI). Two independent builders
//! produce it:
//!
//! - [`batch_table`] — the offline path: derive all spans up front, fan NC
//!   damage out to hosted VMs exactly like the daily job, then drain three
//!   [`CdiAccumulator`]s per VM tick by tick.
//! - [`live_table`] — the serving path: replay the
//!   [`LiveFeed`](cloudbot::feed::LiveFeed) through a sharded
//!   [`CdiService`] and recover each tick's integral from the watermark
//!   deltas of [`CdiService::vm_row`].
//!
//! The two are the batch/live parity pair: `tests/serve_parity.rs` asserts
//! they agree within 1e-9 on every cell, and the determinism proptests
//! assert [`live_table`] is *exactly* identical across shard counts.

use std::collections::BTreeMap;

use cdi_core::error::Result;
use cdi_core::event::{Category, EventSpan};
use cdi_core::num::ms_f64;
use cdi_core::streaming::CdiAccumulator;
use cdi_serve::{CdiService, ServeConfig};
use cloudbot::feed::LiveFeed;
use cloudbot::pipeline::DailyPipeline;
use simfleet::topology::VmId;

use crate::catalog::Scenario;

/// Index of a category in the table's per-tick `[f64; 3]` rows
/// (the order of [`Category::ALL`]).
pub fn category_index(category: Category) -> usize {
    match category {
        Category::Unavailability => 0,
        Category::Performance => 1,
        Category::ControlPlane => 2,
    }
}

/// Per-VM, per-category, per-tick damage fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct TickTable {
    /// Start of the evaluation window.
    pub start: i64,
    /// Tick length (ms).
    pub tick_ms: i64,
    rows: BTreeMap<VmId, Vec<[f64; 3]>>,
}

impl TickTable {
    /// Number of ticks per row (0 for an empty table).
    pub fn ticks(&self) -> usize {
        self.rows.values().next().map(Vec::len).unwrap_or(0)
    }

    /// The VM ids covered, ascending.
    pub fn vms(&self) -> Vec<VmId> {
        self.rows.keys().copied().collect()
    }

    /// One VM's per-tick fractions, if present.
    pub fn row(&self, vm: VmId) -> Option<&[[f64; 3]]> {
        self.rows.get(&vm).map(Vec::as_slice)
    }

    /// The largest absolute per-cell difference against another table
    /// (infinity when shapes differ) — the parity test's metric.
    pub fn max_abs_diff(&self, other: &TickTable) -> f64 {
        if self.vms() != other.vms() || self.ticks() != other.ticks() {
            return f64::INFINITY;
        }
        let mut worst: f64 = 0.0;
        for (vm, row) in &self.rows {
            if let Some(other_row) = other.rows.get(vm) {
                for (a, b) in row.iter().zip(other_row.iter()) {
                    for c in 0..3 {
                        worst = worst.max((a[c] - b[c]).abs());
                    }
                }
            }
        }
        worst
    }
}

/// The batch path: all spans derived up front (lenient, matching the
/// feed's derivation), NC damage fanned out to hosted VMs with host-only
/// telemetry excluded, then three accumulators per VM drained tick by
/// tick.
pub fn batch_table(
    pipeline: &DailyPipeline,
    scenario: &Scenario,
    events: &[cdi_core::event::RawEvent],
) -> Result<TickTable> {
    let world = &scenario.world;
    let (by_target, _quarantined) = pipeline.spans_by_target_lenient(events, scenario.end);
    let empty: Vec<EventSpan> = Vec::new();
    let mut rows: BTreeMap<VmId, Vec<[f64; 3]>> = BTreeMap::new();
    for vm in world.fleet.vms() {
        let mut spans: Vec<EventSpan> = by_target
            .get(&cdi_core::event::Target::Vm(vm.id))
            .unwrap_or(&empty)
            .clone();
        if let Some(nc_spans) = by_target.get(&cdi_core::event::Target::Nc(vm.nc)) {
            spans.extend(
                nc_spans.iter().filter(|s| s.name != "inspect_cpu_power_tdp").cloned(),
            );
        }
        let mut accs = [
            CdiAccumulator::new(scenario.start),
            CdiAccumulator::new(scenario.start),
            CdiAccumulator::new(scenario.start),
        ];
        for span in spans {
            accs[category_index(span.category)].ingest(span)?;
        }
        let mut row = Vec::new();
        let mut prev = [0.0f64; 3];
        let mut t = scenario.start;
        while t < scenario.end {
            let hi = (t + scenario.tick_ms).min(scenario.end);
            let mut cell = [0.0f64; 3];
            for c in 0..3 {
                accs[c].advance_watermark(hi)?;
                let frozen = accs[c].damage_integral();
                cell[c] = (frozen - prev[c]) / ms_f64(hi - t);
                prev[c] = frozen;
            }
            row.push(cell);
            t = hi;
        }
        rows.insert(vm.id, row);
    }
    Ok(TickTable { start: scenario.start, tick_ms: scenario.tick_ms, rows })
}

/// The serving path: replay the feed through a sharded [`CdiService`]
/// (with NC → VM fan-out routing) and recover each tick's integral from
/// the watermark deltas of the per-VM rows.
pub fn live_table(scenario: &Scenario, feed: &LiveFeed, shards: usize) -> Result<TickTable> {
    let cfg = ServeConfig {
        shards,
        period_start: scenario.start,
        ..ServeConfig::default()
    };
    let mut service = CdiService::new(cfg)?.with_fleet_routing(&scenario.world.fleet);
    let vms: Vec<VmId> = scenario.world.fleet.vms().iter().map(|v| v.id).collect();
    let mut rows: BTreeMap<VmId, Vec<[f64; 3]>> = BTreeMap::new();
    let mut prev: BTreeMap<VmId, [f64; 3]> = BTreeMap::new();
    for vm in &vms {
        rows.insert(*vm, Vec::new());
        prev.insert(*vm, [0.0; 3]);
    }
    let mut low = scenario.start;
    for batch in &feed.batches {
        for (target, span) in &batch.spans {
            service.ingest(*target, span.clone());
        }
        service.advance_watermark(batch.watermark)?;
        service.flush();
        let width = ms_f64(batch.watermark - low);
        for vm in &vms {
            let r = service.vm_row(*vm)?;
            let service_time = ms_f64(r.service_time);
            let mut cell = [0.0f64; 3];
            let p = prev.entry(*vm).or_insert([0.0; 3]);
            for cat in Category::ALL {
                let c = category_index(cat);
                let integral = r.get(cat) * service_time;
                cell[c] = (integral - p[c]) / width;
                p[c] = integral;
            }
            if let Some(row) = rows.get_mut(vm) {
                row.push(cell);
            }
        }
        low = batch.watermark;
    }
    service.shutdown();
    Ok(TickTable { start: scenario.start, tick_ms: scenario.tick_ms, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{build, ScenarioConfig};
    use crate::run::ScenarioRun;

    #[test]
    fn batch_table_localizes_damage_in_time_and_space() {
        let cfg = ScenarioConfig::quick(0); // slot 0: incident at 5 h
        let s = build("regional-failover", &cfg).unwrap();
        let run = ScenarioRun::prepare(&s).unwrap();
        let struck: Vec<VmId> = s.truth.windows()[0].scope.vms(run.fleet());
        assert!(!struck.is_empty());
        let hull = s.truth.span().unwrap();
        for vm in run.batch.vms() {
            let row = run.batch.row(vm).unwrap();
            let is_struck = struck.contains(&vm);
            let mut damaged = false;
            for (i, cell) in row.iter().enumerate() {
                let t = run.tick_start(i);
                if cell[0] > 0.5 {
                    damaged = true;
                    assert!(
                        is_struck,
                        "vm {vm} outside the region shows unavailability at {t}"
                    );
                    assert!(
                        t + s.tick_ms > hull.start && t < hull.end,
                        "damage at {t} outside truth {hull:?}"
                    );
                }
            }
            if is_struck {
                assert!(damaged, "struck vm {vm} shows no unavailability");
            }
        }
    }

    #[test]
    fn live_table_matches_batch_table() {
        let cfg = ScenarioConfig::quick(1);
        let s = build("ddos-blackhole-wave", &cfg).unwrap();
        let run = ScenarioRun::prepare(&s).unwrap();
        let live = live_table(&s, &run.feed, 2).unwrap();
        let diff = run.batch.max_abs_diff(&live);
        assert!(diff < 1e-9, "batch/live divergence {diff}");
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let cfg = ScenarioConfig::quick(2);
        let s = build("flapping-recoveries", &cfg).unwrap();
        let run = ScenarioRun::prepare(&s).unwrap();
        let empty = TickTable { start: 0, tick_ms: 1, rows: BTreeMap::new() };
        assert_eq!(run.batch.max_abs_diff(&empty), f64::INFINITY);
        assert_eq!(run.batch.max_abs_diff(&run.batch.clone()), 0.0);
    }
}
