//! A prepared scenario: the shared inputs every detector consumes.
//!
//! Preparing a scenario runs the expensive, detector-independent work once —
//! extraction, span derivation, live-feed slicing, and the batch per-tick
//! damage table — so a matrix run with N detectors pays for the pipeline
//! once, not N times, and all detectors provably score the *same* input.

use cdi_core::error::Result;
use cdi_core::event::RawEvent;
use cloudbot::feed::LiveFeed;
use cloudbot::pipeline::DailyPipeline;
use simfleet::scenario::MINUTE;
use simfleet::topology::Fleet;

use crate::catalog::Scenario;
use crate::table::{batch_table, TickTable};

/// A scenario plus everything derived from it that detectors share.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The scenario being evaluated.
    pub scenario: Scenario,
    /// The pipeline used for extraction and span derivation (5-minute
    /// sampling, the scenario-suite default).
    pub pipeline: DailyPipeline,
    /// All extracted raw events over the evaluation window.
    pub events: Vec<RawEvent>,
    /// The window replayed as watermarked tick batches (the live path's
    /// input; also what `tests/serve_parity.rs` feeds `cdi-serve`).
    pub feed: LiveFeed,
    /// Per-VM, per-category, per-tick damage fractions computed on the
    /// batch accumulator path.
    pub batch: TickTable,
}

impl ScenarioRun {
    /// Run extraction, feed slicing, and the batch damage table for a
    /// scenario.
    pub fn prepare(scenario: &Scenario) -> Result<ScenarioRun> {
        let pipeline = DailyPipeline::with_step_ms(5 * MINUTE);
        let events = pipeline.events(&scenario.world, scenario.start, scenario.end);
        let feed = LiveFeed::build(
            &pipeline,
            &scenario.world,
            scenario.start,
            scenario.end,
            scenario.tick_ms,
        )?;
        let batch = batch_table(&pipeline, scenario, &events)?;
        Ok(ScenarioRun { scenario: scenario.clone(), pipeline, events, feed, batch })
    }

    /// The fleet the scenario runs on (scoring resolves truth scopes
    /// against it).
    pub fn fleet(&self) -> &Fleet {
        &self.scenario.world.fleet
    }

    /// Number of ticks in the evaluation window.
    pub fn ticks(&self) -> usize {
        self.feed.batches.len()
    }

    /// Start timestamp of tick `i`.
    pub fn tick_start(&self, i: usize) -> i64 {
        self.scenario.start + i as i64 * self.scenario.tick_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{build, ScenarioConfig};

    #[test]
    fn prepare_extracts_events_and_tables() {
        let cfg = ScenarioConfig::quick(3);
        let s = build("regional-failover", &cfg).unwrap();
        let run = ScenarioRun::prepare(&s).unwrap();
        assert!(!run.events.is_empty(), "a regional outage must extract events");
        assert_eq!(run.ticks(), ((s.end - s.start) / s.tick_ms) as usize);
        assert_eq!(run.tick_start(0), s.start);
        assert_eq!(run.tick_start(4), s.start + 4 * s.tick_ms);
        assert_eq!(run.batch.ticks(), run.ticks());
        assert_eq!(run.batch.vms().len(), run.fleet().vms().len());
        assert!(run.feed.quarantined.is_empty(), "clean worlds quarantine nothing");
    }
}
