//! Rule-engine throughput: expression parsing and batch evaluation over
//! fleets' worth of active events.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cdi_core::event::{RawEvent, Severity, Target};
use cloudbot::mining::{association_rules, fp_growth, transactions_from_events};
use cloudbot::rules::{Expr, RuleEngine};

fn make_events(n_targets: u64, per_target: usize) -> Vec<RawEvent> {
    const NAMES: [&str; 6] =
        ["slow_io", "nic_flapping", "vm_hang", "packet_loss", "cpu_contention", "vm_crash"];
    let mut out = Vec::new();
    for t in 0..n_targets {
        for i in 0..per_target {
            out.push(RawEvent::new(
                NAMES[(t as usize + i) % NAMES.len()],
                1_000,
                Target::Vm(t),
                600_000,
                Severity::Error,
            ));
        }
    }
    out
}

fn bench_rules(c: &mut Criterion) {
    c.bench_function("rules/parse_expression", |b| {
        b.iter(|| {
            Expr::parse(black_box("slow_io && (nic_flapping || packet_loss) && !vm_hang"))
                .unwrap()
        })
    });

    let engine = RuleEngine::paper_rules();
    let mut group = c.benchmark_group("rules/evaluate");
    for &targets in &[100u64, 1_000, 10_000] {
        let events = make_events(targets, 3);
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(targets), &events, |b, events| {
            b.iter(|| engine.evaluate(black_box(events), 2_000, &[]))
        });
    }
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    // A fleet-day's worth of co-occurring events for rule discovery.
    let events = make_events(2_000, 4);
    let transactions = transactions_from_events(&events, 600_000);
    c.bench_function("mining/transactions_from_8k_events", |b| {
        b.iter(|| transactions_from_events(black_box(&events), 600_000))
    });
    c.bench_function("mining/fp_growth", |b| {
        b.iter(|| fp_growth(black_box(&transactions), 20))
    });
    let itemsets = fp_growth(&transactions, 20);
    c.bench_function("mining/association_rules", |b| {
        b.iter(|| association_rules(black_box(&itemsets), transactions.len(), 0.5))
    });
}

criterion_group!(benches, bench_rules, bench_mining);
criterion_main!(benches);
