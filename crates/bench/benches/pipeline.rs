//! minispark engine benchmarks: shuffle-heavy aggregation across thread
//! counts (the stand-in for the paper's 100-executor Spark scaling) and the
//! BI drill-down query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use minispark::bi::{Aggregate, Query};
use minispark::store::{ColumnType, Schema, Table, Value};
use minispark::{Dataset, ExecContext};

fn bench_engine(c: &mut Criterion) {
    // reduce_by_key over 1M pairs, the core shuffle pattern of the CDI job.
    let pairs: Vec<(u32, u64)> = (0..1_000_000u64).map(|i| ((i % 1024) as u32, i)).collect();
    let mut group = c.benchmark_group("minispark/reduce_by_key_1M");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let ctx = ExecContext::with_threads(threads);
                    let d = Dataset::from_vec(pairs.clone(), 16).unwrap();
                    let r = d.reduce_by_key(16, |a, b| a + b).unwrap();
                    black_box(r.count(&ctx))
                })
            },
        );
    }
    group.finish();

    // Narrow map/filter chain (no shuffle) at 4 threads.
    let data: Vec<i64> = (0..1_000_000).collect();
    let mut group = c.benchmark_group("minispark/narrow_chain_1M");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.sample_size(10);
    group.bench_function("map_filter_count", |b| {
        b.iter(|| {
            let ctx = ExecContext::with_threads(4);
            let d = Dataset::from_vec(data.clone(), 16).unwrap();
            black_box(d.map(|x| x * 3).filter(|x| x % 7 == 0).count(&ctx))
        })
    });
    group.finish();

    // BI drill-down over a 100k-row CDI table (Formula 4 per region).
    let schema = Schema::new(vec![
        ("region", ColumnType::Str),
        ("cdi", ColumnType::Float),
        ("service", ColumnType::Int),
    ])
    .unwrap();
    let mut table = Table::new(schema);
    for i in 0..100_000u64 {
        table
            .push_row(vec![
                Value::Str(format!("region-{}", i % 8)),
                Value::Float((i % 100) as f64 / 1e4),
                Value::Int(1440),
            ])
            .unwrap();
    }
    let mut group = c.benchmark_group("minispark/bi");
    group.throughput(Throughput::Elements(table.len() as u64));
    group.sample_size(20);
    group.bench_function("formula4_drilldown_100k", |b| {
        let query = Query::new().group_by("region").aggregate(
            "cdi",
            Aggregate::WeightedMean { value: "cdi".into(), weight: "service".into() },
        );
        b.iter(|| black_box(query.run(&table).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
