//! Event-extraction throughput: expert threshold rules over raw samples
//! (the paper's "hundreds of TB → GB" compression step) and the
//! statistical STL + K-Sigma path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cdi_core::event::{Severity, Target};
use cloudbot::collector::Collector;
use cloudbot::extractor::Extractor;
use simfleet::faults::{FaultInjection, FaultKind, FaultTarget};
use simfleet::{Fleet, FleetConfig, SimWorld};

const HOUR: i64 = 3_600_000;

fn world() -> SimWorld {
    let fleet = Fleet::build(&FleetConfig {
        regions: vec!["r1".into()],
        azs_per_region: 1,
        clusters_per_az: 2,
        ncs_per_cluster: 4,
        vms_per_nc: 8,
        nc_cores: 104,
        machine_models: vec!["mA".into()],
        arch: simfleet::DeploymentArch::Hybrid,
    });
    let mut w = SimWorld::new(fleet, 99);
    w.inject(FaultInjection::new(
        FaultKind::SlowIo { factor: 8.0 },
        FaultTarget::Vm(0),
        0,
        2 * HOUR,
    ));
    w.inject(FaultInjection::new(FaultKind::NicFlapping, FaultTarget::Nc(1), HOUR, 2 * HOUR));
    w
}

fn bench_extract(c: &mut Criterion) {
    let w = world();
    let collector = Collector::default();
    let extractor = Extractor::default();

    // 64 VMs × 5 metrics × 6h of minute samples.
    let data = collector.collect(&w, 0, 6 * HOUR);
    let n_samples = data.metrics.len() as u64;
    let mut group = c.benchmark_group("extract");
    group.throughput(Throughput::Elements(n_samples));
    group.bench_function("expert_rules_6h_fleet", |b| {
        b.iter(|| extractor.extract(black_box(&data)))
    });
    group.finish();

    // Statistical path: one VM-day series with an hour-of-day season.
    let series = w.vm_metric_series(3, simfleet::telemetry::Metric::ReadLatencyMs, 0, 24 * HOUR, 60_000);
    let mut group = c.benchmark_group("extract_statistical");
    group.throughput(Throughput::Elements(series.len() as u64));
    group.bench_function("stl_ksigma_vm_day", |b| {
        b.iter(|| {
            extractor.extract_statistical(
                Target::Vm(3),
                black_box(&series),
                60,
                "slow_io",
                Severity::Critical,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extract);
criterion_main!(benches);
