//! End-to-end daily-CDI job (Section V): the full
//! simulate → collect → extract → weight → Algorithm 1 path for one
//! fleet-day, serial vs the minispark dataflow at several thread counts.
//!
//! The paper's job handles ~10 GB of events in ~500 s of core CDI time on
//! 800 cores; this bench reports the single-machine equivalent so
//! EXPERIMENTS.md can relate the two.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cdi_repro::daily_job::{run, DailyJobConfig};
use cloudbot::pipeline::DailyPipeline;
use simfleet::scenario::{background_faults, BackgroundRates, DAY};
use simfleet::{Fleet, FleetConfig, SimWorld};

fn world() -> SimWorld {
    let fleet = Fleet::build(&FleetConfig {
        regions: vec!["r1".into()],
        azs_per_region: 1,
        clusters_per_az: 2,
        ncs_per_cluster: 4,
        vms_per_nc: 8,
        nc_cores: 104,
        machine_models: vec!["mA".into(), "mB".into()],
        arch: simfleet::DeploymentArch::Hybrid,
    });
    let mut w = SimWorld::new(fleet, 4242);
    background_faults(&mut w, 0, DAY, &BackgroundRates::quiet().scaled(3.0));
    w
}

fn bench_daily_job(c: &mut Criterion) {
    let w = world();
    let pipeline = DailyPipeline::default();
    let n_vms = w.fleet.vms().len() as u64;

    let mut group = c.benchmark_group("daily_job/64vm_day");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n_vms));

    group.bench_function("serial_pipeline", |b| {
        b.iter(|| black_box(pipeline.vm_cdi_rows(&w, 0, DAY).unwrap()))
    });
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("minispark_dataflow", threads),
            &threads,
            |b, &threads| {
                let config = DailyJobConfig { threads, partitions: 16, ..Default::default() };
                b.iter(|| black_box(run(&w, &pipeline, 0, 0, DAY, config).unwrap()))
            },
        );
    }
    group.finish();

    // Core CDI computation alone (events already extracted): the number the
    // paper reports as "around 500 seconds" for their scale.
    let events = pipeline.events(&w, 0, DAY);
    let mut group = c.benchmark_group("daily_job/core_cdi_only");
    group.sample_size(20);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("events_to_rows", |b| {
        b.iter(|| {
            black_box(
                pipeline.vm_cdi_rows_from_events(&w, black_box(&events), 0, DAY).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_daily_job);
criterion_main!(benches);
