//! Ablation: the `O(n log n)` sweep-line CDI (Algorithm 1 as implemented)
//! vs the paper's literal per-timestep array, across event counts.
//!
//! The paper reports ~500 s of core CDI computation for a fleet-day on 800
//! cores; this bench gives the single-core events/s of both formulations so
//! the DESIGN.md ablation has concrete numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cdi_core::event::{Category, EventSpan};
use cdi_core::indicator::{cdi, cdi_naive, ServicePeriod};
use cdi_core::time::{minutes, DAY_MS};

/// Deterministic pseudo-random spans over one day.
fn make_spans(n: usize) -> Vec<EventSpan> {
    let mut spans = Vec::with_capacity(n);
    let mut state = 0x1234_5678_u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    for i in 0..n {
        let start = minutes((next() % 1400) as i64);
        let dur = minutes(1 + (next() % 30) as i64);
        let weight = 0.1 + (next() % 10) as f64 / 10.0 * 0.9;
        let cat = match i % 3 {
            0 => Category::Unavailability,
            1 => Category::Performance,
            _ => Category::ControlPlane,
        };
        spans.push(EventSpan::new("bench_event", cat, start, start + dur, weight.min(1.0)));
    }
    spans
}

fn bench_cdi(c: &mut Criterion) {
    let period = ServicePeriod::new(0, DAY_MS).unwrap();
    let mut group = c.benchmark_group("cdi_algorithm");
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let spans = make_spans(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sweep_line", n), &spans, |b, spans| {
            b.iter(|| cdi(black_box(spans), period).unwrap());
        });
        // The naive array is O(T/Δt) per call; skip the largest size to keep
        // the suite fast — the trend is clear by 10k.
        if n <= 10_000 {
            group.bench_with_input(BenchmarkId::new("naive_minute_array", n), &spans, |b, spans| {
                b.iter(|| cdi_naive(black_box(spans), period, minutes(1)).unwrap());
            });
        }
        // Finer resolution blows up the array cost (86.4k slots/day at
        // one-second steps, 86.4M at milliseconds) while the sweep line is
        // resolution-independent — the crossover the DESIGN.md ablation
        // calls out. One size suffices to show it.
        if n == 1_000 {
            group.bench_with_input(BenchmarkId::new("naive_second_array", n), &spans, |b, spans| {
                b.iter(|| cdi_naive(black_box(spans), period, 1_000).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cdi);
criterion_main!(benches);
