//! Cost of the statistical machinery behind the A/B workflow (Fig. 10) and
//! the anomaly detectors: omnibus tests, post-hoc procedures, the
//! studentized-range CDF, and the SPOT/GPD fit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use statskit::abtest::{run_ab_test, AbTestConfig};
use statskit::anomaly::{grimshaw_fit, KSigma};
use statskit::dist::{Normal, StudentizedRange};
use statskit::hypothesis::{dagostino_k2, kruskal_wallis, one_way_anova, welch_anova};
use statskit::posthoc::{dunn, games_howell, tukey_hsd, Adjustment};

/// Deterministic near-normal sample via normal quantiles.
fn sample(n: usize, mu: f64, sigma: f64) -> Vec<f64> {
    let std = Normal::standard();
    (1..=n)
        .map(|i| mu + sigma * std.quantile(i as f64 / (n + 1) as f64).unwrap())
        .collect()
}

fn bench_stats(c: &mut Criterion) {
    let a = sample(200, 0.0, 1.0);
    let b = sample(200, 0.3, 1.2);
    let d = sample(200, 1.0, 0.8);
    let groups: Vec<&[f64]> = vec![&a, &b, &d];

    c.bench_function("omnibus/one_way_anova_3x200", |bch| {
        bch.iter(|| one_way_anova(black_box(&groups)).unwrap())
    });
    c.bench_function("omnibus/welch_anova_3x200", |bch| {
        bch.iter(|| welch_anova(black_box(&groups)).unwrap())
    });
    c.bench_function("omnibus/kruskal_wallis_3x200", |bch| {
        bch.iter(|| kruskal_wallis(black_box(&groups)).unwrap())
    });
    c.bench_function("normality/dagostino_k2_200", |bch| {
        bch.iter(|| dagostino_k2(black_box(&a)).unwrap())
    });
    c.bench_function("posthoc/tukey_hsd_3x200", |bch| {
        bch.iter(|| tukey_hsd(black_box(&groups)).unwrap())
    });
    c.bench_function("posthoc/games_howell_3x200", |bch| {
        bch.iter(|| games_howell(black_box(&groups)).unwrap())
    });
    c.bench_function("posthoc/dunn_holm_3x200", |bch| {
        bch.iter(|| dunn(black_box(&groups), Adjustment::Holm).unwrap())
    });
    c.bench_function("workflow/full_ab_test_3x200", |bch| {
        bch.iter(|| run_ab_test(black_box(&groups), &AbTestConfig::default()).unwrap())
    });

    // The studentized-range CDF is the numerically heaviest primitive: two
    // nested quadratures per evaluation.
    let sr = StudentizedRange::new(3, 50.0).unwrap();
    c.bench_function("dist/studentized_range_cdf", |bch| {
        bch.iter(|| sr.cdf(black_box(3.5)).unwrap())
    });

    // SPOT tail fit: Grimshaw root scan + likelihood comparison.
    let excesses: Vec<f64> =
        (1..=500).map(|i| -2.0 * (1.0 - i as f64 / 501.0_f64).ln()).collect();
    c.bench_function("anomaly/grimshaw_fit_500", |bch| {
        bch.iter(|| grimshaw_fit(black_box(&excesses)).unwrap())
    });

    // K-Sigma over a year of daily CDI points.
    let series: Vec<f64> = (0..365).map(|i| (i as f64 * 0.7).sin() * 0.1 + 1.0).collect();
    c.bench_function("anomaly/ksigma_365", |bch| {
        bch.iter(|| {
            let det = KSigma::new(4.0, 28, 1e-9).unwrap();
            det.detect(black_box(&series))
        })
    });
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
