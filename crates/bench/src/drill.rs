//! The SLO-driven chaos drill for `cdi-serve` (`experiments drill`).
//!
//! Four probes, all recorded into `BENCH_PR6.json`:
//!
//! - **SLO ramp**: producer count doubles (1, 2, 4, 8, 16) against a
//!   fixed pool until a declared SLO breaks — p99 ingest admission
//!   latency (the time one `ingest` call spends blocked on admission and
//!   queue push) or watermark staleness (coordinator watermark minus the
//!   minimum shard-applied watermark, i.e. how far the slowest shard lags
//!   the stream in simulated time).
//! - **Chaos agreement**: the correctness gate. A run that is grown
//!   3 → 6 shards, has a seeded-random shard killed, is rolled
//!   shard-by-shard, and is shrunk 6 → 2 — all while three producers
//!   keep writing — must match an uninterrupted fixed-shard run within
//!   1e-9 per-target CDI on every indicator.
//! - **Resize overhead**: wall-clock cost of the same ingest workload
//!   with live resizes firing mid-stream vs. an undisturbed run — the
//!   price of the fence protocol under sustained load.
//! - **Autoscale drill**: heavy and light load waves against
//!   [`AutoScalerPolicy`], resizing on each wave's queue-depth
//!   high-water mark — records the shard-count trajectory.
//!
//! The drill is seeded: the killed shard, span weights, and categories
//! are all functions of `--seed`. Wall-clock numbers vary run to run;
//! the agreement gate does not.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use cdi_core::event::{Category, EventSpan, Target};
use cdi_serve::{AutoScalerPolicy, BackpressurePolicy, CdiService, ServeConfig};
use serde::Serialize;

const MIN: i64 = 60_000;
/// Distinct VM targets in the synthetic stream.
const TARGETS: u64 = 256;

/// SLO: p99 ingest admission latency, microseconds.
const SLO_P99_INGEST_US: f64 = 500.0;
/// SLO: watermark staleness, simulated milliseconds.
const SLO_STALENESS_MS: i64 = 5 * MIN;

/// SplitMix64 — the drill's only randomness, fully determined by the seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The span target `t` receives in wave `c`: weight and category are a
/// hash of `(seed, t, c)`, boundaries are the wave's minute window.
fn wave_span(seed: u64, t: u64, c: i64) -> EventSpan {
    let mut h = seed ^ (t << 32) ^ c as u64;
    let r = splitmix64(&mut h);
    let cat = match r % 3 {
        0 => Category::Unavailability,
        1 => Category::Performance,
        _ => Category::ControlPlane,
    };
    let weight = 0.1 + ((r >> 8) % 9) as f64 / 10.0;
    EventSpan::new("drill_span", cat, c * MIN, (c + 1) * MIN, weight)
}

fn service(shards: usize, queue_capacity: usize) -> CdiService {
    let cfg = ServeConfig {
        shards,
        queue_capacity,
        policy: BackpressurePolicy::Block,
        period_start: 0,
        ..ServeConfig::default()
    };
    CdiService::new(cfg).unwrap_or_else(|e| unreachable!("static config is valid: {e}"))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One step of the producer ramp.
#[derive(Debug, Clone, Serialize)]
pub struct SloRampStep {
    /// Concurrent producer threads this step.
    pub producers: usize,
    /// Span deliveries this step.
    pub spans: u64,
    /// Median ingest admission latency, microseconds.
    pub p50_ingest_us: f64,
    /// 99th-percentile ingest admission latency, microseconds.
    pub p99_ingest_us: f64,
    /// Worst watermark staleness observed mid-load, simulated ms.
    pub staleness_ms: i64,
    /// Queue-depth high-water mark across the pool for this step.
    pub queue_hwm: u64,
    /// Did this step break an SLO?
    pub breached: bool,
}

/// The producer ramp: load doubles until an SLO breaks.
#[derive(Debug, Clone, Serialize)]
pub struct SloRamp {
    /// Declared p99 ingest-latency SLO, microseconds.
    pub slo_p99_ingest_us: f64,
    /// Declared watermark-staleness SLO, simulated ms.
    pub slo_staleness_ms: i64,
    /// Shards in the fixed pool under test.
    pub shards: usize,
    /// One record per ramp step, in order.
    pub steps: Vec<SloRampStep>,
    /// Producer count of the first breaching step (`None` if the ramp
    /// completed inside SLO).
    pub breach_producers: Option<usize>,
}

/// Run one ramp step: `producers` threads deliver `cycles` waves over
/// disjoint target slices while the coordinator advances the watermark
/// and samples staleness.
fn ramp_step(producers: usize, cycles: i64, shards: usize) -> SloRampStep {
    let svc = Arc::new(service(shards, 128));
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(cycles as usize * 32);
                for c in 0..cycles {
                    for t in (p as u64..TARGETS).step_by(producers) {
                        let span = wave_span(0, t, c);
                        let at = Instant::now();
                        svc.ingest(Target::Vm(t), span);
                        lat.push(at.elapsed().as_secs_f64() * 1e6);
                    }
                }
                lat
            })
        })
        .collect();

    // Coordinator: pace the watermark through the waves and watch how far
    // the slowest shard lags it while producers are writing.
    let mut staleness_ms = 0i64;
    let mut c = 0i64;
    while handles.iter().any(|h| !h.is_finished()) {
        if c < cycles {
            c += 1;
            let _ = svc.advance_watermark(c * MIN);
        }
        staleness_ms = staleness_ms.max(svc.watermark() - svc.min_applied_watermark());
        std::thread::yield_now();
    }
    let mut lat: Vec<f64> = handles.into_iter().flat_map(|h| h.join().unwrap_or_default()).collect();
    let _ = svc.advance_watermark(cycles * MIN);
    svc.flush();
    lat.sort_by(f64::total_cmp);
    let (p50, p99) = (percentile(&lat, 0.50), percentile(&lat, 0.99));
    SloRampStep {
        producers,
        spans: lat.len() as u64,
        p50_ingest_us: p50,
        p99_ingest_us: p99,
        staleness_ms,
        queue_hwm: svc.take_queue_hwm(),
        breached: p99 > SLO_P99_INGEST_US || staleness_ms > SLO_STALENESS_MS,
    }
}

fn slo_ramp(quick: bool) -> SloRamp {
    let cycles: i64 = if quick { 30 } else { 150 };
    let shards = 4;
    let mut steps = Vec::new();
    let mut breach = None;
    for &producers in &[1usize, 2, 4, 8, 16] {
        let step = ramp_step(producers, cycles, shards);
        let breached = step.breached;
        steps.push(step);
        if breached {
            breach = Some(producers);
            break;
        }
    }
    SloRamp {
        slo_p99_ingest_us: SLO_P99_INGEST_US,
        slo_staleness_ms: SLO_STALENESS_MS,
        shards,
        steps,
        breach_producers: breach,
    }
}

/// The correctness gate: chaos run vs. uninterrupted run.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosAgreement {
    /// Span deliveries in each run.
    pub spans: u64,
    /// Concurrent producers in the chaos run.
    pub producers: usize,
    /// Shard counts the chaos run moved through.
    pub shard_path: Vec<usize>,
    /// Seeded-random shards killed mid-load.
    pub kills: u64,
    /// Dead shards respawned from checkpoint + journal.
    pub respawns: u64,
    /// Single-shard rolling restarts performed mid-load.
    pub restarts: u64,
    /// Largest per-target, per-indicator |chaos − reference| delta.
    pub max_cdi_delta: f64,
    /// Lock-order violations the runtime sanitizer recorded during the
    /// chaos run (debug builds only; the sanitizer compiles out of
    /// release benches, where this is always zero).
    pub lock_order_violations: usize,
    /// `max_cdi_delta < 1e-9` and no lock-order violations.
    pub passed: bool,
}

fn chaos_agreement(seed: u64, quick: bool) -> ChaosAgreement {
    let cycles: i64 = if quick { 40 } else { 160 };
    let producers = 3;

    // Reference: sequential, fixed 3 shards, no lifecycle churn.
    let reference = service(3, 64);
    for c in 0..cycles {
        for t in 0..TARGETS {
            reference.ingest(Target::Vm(t), wave_span(seed, t, c));
        }
        let _ = reference.advance_watermark((c + 1) * MIN);
    }
    reference.flush();

    // Chaos: the same stream from 3 producers (each target exclusive to
    // one producer, so per-target order matches the reference) while the
    // coordinator grows, kills, rolls, and shrinks the pool mid-wave.
    let svc = Arc::new(service(3, 64));
    let barrier = Arc::new(Barrier::new(producers + 1));
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let svc = Arc::clone(&svc);
            let gate = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for c in 0..cycles {
                    gate.wait();
                    for t in (p as u64..TARGETS).step_by(producers) {
                        svc.ingest(Target::Vm(t), wave_span(seed, t, c));
                    }
                    gate.wait();
                }
            })
        })
        .collect();

    let mut rng = seed;
    let mut shard_path = vec![svc.shard_count()];
    for c in 0..cycles {
        barrier.wait();
        // Lifecycle ops land while the wave's producers are mid-delivery.
        if c == cycles / 4 {
            let out = svc.resize(6).unwrap_or_else(|e| unreachable!("grow: {e}"));
            shard_path.push(out.to_shards);
        }
        if c == cycles / 2 {
            let victim = (splitmix64(&mut rng) % svc.shard_count() as u64) as usize;
            let _ = svc.kill_shard(victim);
        }
        if c == 5 * cycles / 8 {
            svc.rolling_restart().unwrap_or_else(|e| unreachable!("roll: {e}"));
        }
        if c == 3 * cycles / 4 {
            let out = svc.resize(2).unwrap_or_else(|e| unreachable!("shrink: {e}"));
            shard_path.push(out.to_shards);
        }
        barrier.wait();
        let _ = svc.advance_watermark((c + 1) * MIN);
    }
    for h in handles {
        let _ = h.join();
    }
    svc.flush();

    let mut max_delta = 0.0f64;
    for t in 0..TARGETS {
        let a = reference.point(Target::Vm(t)).ok().flatten();
        let b = svc.point(Target::Vm(t)).ok().flatten();
        match (a, b) {
            (Some(a), Some(b)) => {
                max_delta = max_delta
                    .max((a.unavailability - b.unavailability).abs())
                    .max((a.performance - b.performance).abs())
                    .max((a.control_plane - b.control_plane).abs());
            }
            // A target tracked by one run but not the other is an
            // unconditional failure.
            _ => max_delta = f64::INFINITY,
        }
    }
    let m = svc.metrics();
    // In debug builds the whole drill ran under the lock-order sanitizer:
    // a chaos run that produced the right numbers through an undeclared
    // acquisition order still fails the gate.
    let lock_violations = cdi_serve::tracked::take_violations();
    for v in &lock_violations {
        eprintln!("chaos drill: {v}");
    }
    ChaosAgreement {
        spans: TARGETS * cycles as u64,
        producers,
        shard_path,
        kills: m.shard_kills,
        respawns: m.shard_respawns,
        restarts: m.shard_restarts,
        max_cdi_delta: max_delta,
        lock_order_violations: lock_violations.len(),
        passed: max_delta < 1e-9 && lock_violations.is_empty(),
    }
}

/// Wall-clock cost of live resizes under sustained ingest.
#[derive(Debug, Clone, Serialize)]
pub struct ResizeOverhead {
    /// Span deliveries per run.
    pub spans: u64,
    /// Concurrent producers.
    pub producers: usize,
    /// Live resizes fired during the disturbed run.
    pub resizes: u64,
    /// Undisturbed run, seconds.
    pub steady_secs: f64,
    /// Same workload with resizes mid-stream, seconds.
    pub resized_secs: f64,
    /// `resized_secs / steady_secs` — the fence-protocol tax.
    pub overhead_ratio: f64,
}

/// Run the overhead workload once; `resize_between` alternates the pool
/// 4 → 8 → 4 → … once per ingest quartile when set.
fn overhead_run(cycles: i64, resize_between: bool) -> (f64, u64) {
    let producers = 4usize;
    let svc = Arc::new(service(4, 256));
    let total_spans = TARGETS * cycles as u64;
    let t = Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                for c in 0..cycles {
                    for t in (p as u64..TARGETS).step_by(producers) {
                        svc.ingest(Target::Vm(t), wave_span(1, t, c));
                    }
                }
            })
        })
        .collect();
    let mut resizes = 0u64;
    if resize_between {
        let mut next = total_spans / 8;
        let mut to = 8usize;
        while handles.iter().any(|h| !h.is_finished()) {
            if svc.spans_ingested() >= next {
                if svc.resize(to).is_ok() {
                    resizes += 1;
                }
                to = if to == 8 { 4 } else { 8 };
                next += total_spans / 8;
            }
            std::thread::yield_now();
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let _ = svc.advance_watermark(cycles * MIN);
    svc.flush();
    (t.elapsed().as_secs_f64(), resizes)
}

fn resize_overhead(quick: bool) -> ResizeOverhead {
    let cycles: i64 = if quick { 60 } else { 300 };
    let iters = if quick { 1 } else { 3 };
    let mut steady = f64::INFINITY;
    let mut resized = f64::INFINITY;
    let mut resizes = 0;
    for _ in 0..iters {
        steady = steady.min(overhead_run(cycles, false).0);
        let (secs, n) = overhead_run(cycles, true);
        if secs < resized {
            resized = secs;
            resizes = n;
        }
    }
    ResizeOverhead {
        spans: TARGETS * cycles as u64,
        producers: 4,
        resizes,
        steady_secs: steady,
        resized_secs: resized,
        overhead_ratio: resized / steady,
    }
}

/// One autoscaler wave: load, observe, maybe resize.
#[derive(Debug, Clone, Serialize)]
pub struct AutoscaleStep {
    /// Wave index.
    pub wave: usize,
    /// `"heavy"` (8 bursty producers) or `"light"` (1 trickle producer).
    pub load: String,
    /// Queue-depth high-water mark the wave left behind.
    pub queue_hwm: u64,
    /// Shard count entering the wave.
    pub shards_before: usize,
    /// Shard count after the policy's verdict (same as before on hold).
    pub shards_after: usize,
}

/// The autoscale drill: the policy's shard-count trajectory under a
/// heavy-then-light load profile.
#[derive(Debug, Clone, Serialize)]
pub struct AutoscaleDrill {
    /// The policy under test.
    pub policy: AutoScalerPolicy,
    /// One record per wave.
    pub steps: Vec<AutoscaleStep>,
    /// Highest shard count reached.
    pub peak_shards: usize,
    /// Shard count after the final light wave.
    pub final_shards: usize,
}

fn autoscale_drill(quick: bool) -> AutoscaleDrill {
    let policy = AutoScalerPolicy {
        min_shards: 2,
        max_shards: 16,
        grow_depth: 32,
        shrink_depth: 8,
    };
    let cycles: i64 = if quick { 20 } else { 80 };
    let svc = Arc::new(service(2, 128));
    let mut steps = Vec::new();
    let mut peak = svc.shard_count();
    // Four heavy waves (burst from 8 producers) then four light ones
    // (single producer, partial target set).
    for wave in 0..8usize {
        let heavy = wave < 4;
        let producers = if heavy { 8 } else { 1 };
        let wave_targets = if heavy { TARGETS } else { TARGETS / 8 };
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    for c in 0..cycles {
                        for t in (p as u64..wave_targets).step_by(producers) {
                            svc.ingest(Target::Vm(t), wave_span(2, t, c));
                        }
                        if !heavy {
                            // Light load is a trickle, not a burst: let the
                            // queues drain between cycles so the high-water
                            // mark reflects the idle pool.
                            svc.flush();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        svc.flush();
        let hwm = svc.take_queue_hwm();
        let before = svc.shard_count();
        if let Some(to) = policy.decide(before, hwm) {
            let _ = svc.resize(to);
        }
        let after = svc.shard_count();
        peak = peak.max(after);
        steps.push(AutoscaleStep {
            wave,
            load: if heavy { "heavy".into() } else { "light".into() },
            queue_hwm: hwm,
            shards_before: before,
            shards_after: after,
        });
    }
    let final_shards = svc.shard_count();
    AutoscaleDrill { policy, steps, peak_shards: peak, final_shards }
}

/// The pass/fail summary at the head of `BENCH_PR6.json`.
#[derive(Debug, Clone, Serialize)]
pub struct DrillGate {
    /// What the gate demands.
    pub target: String,
    /// Largest per-target CDI delta of the chaos run.
    pub chaos_max_cdi_delta: f64,
    /// Producer count that first broke an SLO (`None` = ramp completed).
    pub slo_breach_producers: Option<usize>,
    /// Live-resize wall-clock tax.
    pub resize_overhead_ratio: f64,
    /// The chaos agreement verdict — the only hard gate.
    pub passed: bool,
}

/// Everything one drill run measured.
#[derive(Debug, Clone, Serialize)]
pub struct DrillReport {
    /// PR number this benchmark file belongs to.
    pub pr: u32,
    /// Human title.
    pub title: String,
    /// How the numbers were produced.
    pub harness: String,
    /// Seed that determined kills, weights, and categories.
    pub seed: u64,
    /// Quick (CI) mode?
    pub quick: bool,
    /// The pass/fail summary.
    pub gate: DrillGate,
    /// Producer ramp until SLO breach.
    pub slo_ramp: SloRamp,
    /// The correctness gate run.
    pub chaos_agreement: ChaosAgreement,
    /// Fence-protocol cost under load.
    pub resize_overhead: ResizeOverhead,
    /// Policy-driven shard-count trajectory.
    pub autoscale: AutoscaleDrill,
}

/// Run the full drill.
pub fn run(seed: u64, quick: bool) -> DrillReport {
    let slo = slo_ramp(quick);
    let chaos = chaos_agreement(seed, quick);
    let overhead = resize_overhead(quick);
    let autoscale = autoscale_drill(quick);
    let gate = DrillGate {
        target: "resize-under-load (grow, seeded kill, roll, shrink) within 1e-9 of fixed-shard run"
            .into(),
        chaos_max_cdi_delta: chaos.max_cdi_delta,
        slo_breach_producers: slo.breach_producers,
        resize_overhead_ratio: overhead.overhead_ratio,
        passed: chaos.passed,
    };
    DrillReport {
        pr: 6,
        title: "cdi-serve: online elastic re-sharding, shard lifecycle, and chaos drills".into(),
        harness: format!(
            "experiments drill --seed {seed}{} ({} targets; SLO p99 ingest {} us, staleness {} ms)",
            if quick { " --quick" } else { "" },
            TARGETS,
            SLO_P99_INGEST_US,
            SLO_STALENESS_MS,
        ),
        seed,
        quick,
        gate,
        slo_ramp: slo,
        chaos_agreement: chaos,
        resize_overhead: overhead,
        autoscale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_spans_are_deterministic_and_valid() {
        for t in 0..16 {
            for c in 0..4 {
                let a = wave_span(7, t, c);
                let b = wave_span(7, t, c);
                assert_eq!(a, b);
                assert!(a.weight > 0.0 && a.weight <= 1.0, "weight {}", a.weight);
                assert_eq!(a.end - a.start, MIN);
            }
        }
        // Different seeds give different streams.
        let any_differ = (0..16u64).any(|t| wave_span(1, t, 0) != wave_span(2, t, 0));
        assert!(any_differ);
    }

    #[test]
    fn quick_chaos_agreement_passes_the_gate() {
        let r = chaos_agreement(0xD1A6, true);
        assert!(r.passed, "max delta {}", r.max_cdi_delta);
        assert_eq!(r.kills, 1);
        assert!(r.respawns >= 1);
        assert!(r.restarts >= 1);
        assert_eq!(r.shard_path, vec![3, 6, 2]);
    }

    #[test]
    fn autoscale_grows_under_burst_and_shrinks_when_idle() {
        let r = autoscale_drill(true);
        assert!(r.steps.len() == 8);
        assert!(r.peak_shards >= 2);
        assert!(r.final_shards <= r.peak_shards);
        for s in &r.steps {
            let held = s.shards_before == s.shards_after;
            let doubled = s.shards_after == (s.shards_before * 2).min(16);
            let halved = s.shards_after == (s.shards_before / 2).max(2);
            assert!(held || doubled || halved, "wave {} moved {}→{}", s.wave, s.shards_before, s.shards_after);
        }
    }
}
