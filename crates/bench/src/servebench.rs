//! Wall-clock probes for the `cdi-serve` live serving layer.
//!
//! Three families, all emitted as JSON lines (`experiments bench-serve`):
//!
//! - `serve_ingest_*`: multi-producer ingest throughput at 1/4/8 shards.
//!   Eight producer threads hammer the service concurrently — with one
//!   shard they serialize on a single queue mutex, with eight they spread
//!   across eight, which is the contention sharding exists to remove (and
//!   is measurable even on a single-core box).
//! - `serve_point_query` / `serve_top_k`: per-query latency percentiles
//!   against a populated service.
//! - `serve_merge_top_k`: the k-way merge in isolation, per-merge cost.
//!
//! Inputs are deterministic; timings go to stdout, never `results/`.

use std::sync::Arc;
use std::time::Instant;

use cdi_core::event::{Category, EventSpan, Target};
use cdi_serve::{merge_top_k, BackpressurePolicy, CdiService, ServeConfig};
use serde::Serialize;

const MIN: i64 = 60_000;
/// Distinct VM targets in the synthetic stream.
const TARGETS: u64 = 512;
/// Concurrent producer threads on the ingest side.
const PRODUCERS: usize = 8;

/// One measured serving workload.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchRecord {
    /// Workload name.
    pub op: String,
    /// Shard (worker-thread) count of the service under test.
    pub shards: usize,
    /// Spans ingested, queries issued, or merges performed.
    pub elements: u64,
    /// Best-of-N wall-clock seconds for the whole workload.
    pub secs: f64,
    /// `elements / secs` for the best iteration.
    pub elements_per_sec: f64,
    /// Median per-operation latency in microseconds (0 when the workload
    /// is throughput-shaped and individual operations are not timed).
    pub p50_us: f64,
    /// 99th-percentile per-operation latency in microseconds.
    pub p99_us: f64,
}

/// The `i`-th span of the synthetic stream: targets cycle, time advances
/// one minute every full cycle, categories rotate.
fn nth_span(i: u64) -> (Target, EventSpan) {
    let tick = (i / TARGETS) as i64;
    let cat = match i % 3 {
        0 => Category::Unavailability,
        1 => Category::Performance,
        _ => Category::ControlPlane,
    };
    let span = EventSpan::new("bench_span", cat, tick * MIN, (tick + 1) * MIN, 0.5);
    (Target::Vm(i % TARGETS), span)
}

fn service(shards: usize) -> CdiService {
    // Modest per-shard queues: aggregate buffering scales with the shard
    // count, exactly as it does in a real deployment.
    let cfg = ServeConfig {
        shards,
        queue_capacity: 256,
        policy: BackpressurePolicy::Block,
        period_start: 0,
        ..ServeConfig::default()
    };
    CdiService::new(cfg).unwrap_or_else(|e| unreachable!("static config is valid: {e}"))
}

/// One timed ingest run: `spans` deliveries from [`PRODUCERS`] concurrent
/// producers, then a final watermark + flush so every span is applied.
fn ingest_once(shards: usize, spans: u64) -> f64 {
    let svc = Arc::new(service(shards));
    let t = Instant::now();
    let mut handles = Vec::with_capacity(PRODUCERS);
    let chunk = spans / PRODUCERS as u64;
    for p in 0..PRODUCERS as u64 {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            let hi = if p + 1 == PRODUCERS as u64 { spans } else { (p + 1) * chunk };
            for i in (p * chunk)..hi {
                let (target, span) = nth_span(i);
                svc.ingest(target, span);
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let horizon = ((spans / TARGETS) as i64 + 1) * MIN;
    let _ = svc.advance_watermark(horizon);
    svc.flush();
    t.elapsed().as_secs_f64()
}

fn best_of(iters: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f(); // doubles as warm-up
    for _ in 1..iters {
        best = best.min(f());
    }
    best
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// A populated service for the query-side probes: the full synthetic
/// stream ingested and frozen behind the watermark.
fn populated(shards: usize, spans: u64) -> CdiService {
    let svc = service(shards);
    for i in 0..spans {
        let (target, span) = nth_span(i);
        svc.ingest(target, span);
    }
    let horizon = ((spans / TARGETS) as i64 + 1) * MIN;
    let _ = svc.advance_watermark(horizon);
    svc.flush();
    svc
}

/// Run every serving workload; `iters` timed iterations for the
/// throughput probes (best-of-N). `quick` shrinks the stream for CI
/// smoke runs.
pub fn run(iters: usize, quick: bool) -> Vec<ServeBenchRecord> {
    let spans: u64 = if quick { 20_000 } else { 200_000 };
    let queries: usize = if quick { 2_000 } else { 20_000 };
    let topk_calls: usize = if quick { 200 } else { 2_000 };
    let merges: usize = if quick { 200 } else { 2_000 };
    let mut out = Vec::new();

    // Ingest throughput: the headline sharding scaling number.
    for &shards in &[1usize, 4, 8] {
        let secs = best_of(iters, || ingest_once(shards, spans));
        out.push(ServeBenchRecord {
            op: format!("serve_ingest_{PRODUCERS}p"),
            shards,
            elements: spans,
            secs,
            elements_per_sec: spans as f64 / secs,
            p50_us: 0.0,
            p99_us: 0.0,
        });
    }

    // Query latency against a populated 8-shard service.
    let svc = populated(8, spans);
    let mut lat = Vec::with_capacity(queries);
    let t_all = Instant::now();
    for q in 0..queries {
        let t = Instant::now();
        let _ = svc.point(Target::Vm(q as u64 % TARGETS));
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let total = t_all.elapsed().as_secs_f64();
    lat.sort_by(f64::total_cmp);
    out.push(ServeBenchRecord {
        op: "serve_point_query".into(),
        shards: 8,
        elements: queries as u64,
        secs: total,
        elements_per_sec: queries as f64 / total,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    });

    // End-to-end top-K: per-shard top-k plus the k-way merge.
    let mut lat = Vec::with_capacity(topk_calls);
    let t_all = Instant::now();
    for _ in 0..topk_calls {
        let t = Instant::now();
        let _ = svc.top_k(10, Category::Performance);
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let total = t_all.elapsed().as_secs_f64();
    lat.sort_by(f64::total_cmp);
    out.push(ServeBenchRecord {
        op: "serve_top_k10".into(),
        shards: 8,
        elements: topk_calls as u64,
        secs: total,
        elements_per_sec: topk_calls as f64 / total,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    });

    // The merge in isolation: 8 shard lists of 1024 candidates, k=64.
    let lists: Vec<Vec<(Target, f64)>> = (0..8u64)
        .map(|s| {
            (0..1024u64)
                .map(|i| (Target::Vm(s * 10_000 + i), 1.0 / (1.0 + (s * 1024 + i) as f64)))
                .collect()
        })
        .collect();
    let secs = best_of(iters, || {
        let t = Instant::now();
        for _ in 0..merges {
            std::hint::black_box(merge_top_k(std::hint::black_box(&lists), 64));
        }
        t.elapsed().as_secs_f64()
    });
    out.push(ServeBenchRecord {
        op: "serve_merge_top_k64_8x1024".into(),
        shards: 8,
        elements: merges as u64,
        secs,
        elements_per_sec: merges as f64 / secs,
        p50_us: secs / merges as f64 * 1e6,
        p99_us: 0.0,
    });

    out
}
