//! Wall-clock throughput probes for the minispark engine.
//!
//! Unlike the criterion benches (`benches/pipeline.rs`), these emit a
//! machine-readable record per workload so the perf trajectory can be
//! committed and compared across PRs (`BENCH_PR4.json`). Workload inputs
//! are deterministic; the timings of course are not, which is why this
//! output goes to stdout rather than `results/` (everything under
//! `results/` must be byte-identical between runs).

use minispark::bi::{Aggregate, Query};
use minispark::store::{ColumnType, Schema, Table, Value};
use minispark::{Dataset, ExecContext};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// One measured workload at one thread count.
#[derive(Debug, Clone, Serialize)]
pub struct BenchRecord {
    /// Workload name, matching the criterion group where one exists.
    pub op: String,
    /// Worker threads in the `ExecContext`.
    pub threads: usize,
    /// Input elements processed per iteration.
    pub elements: u64,
    /// Best-of-N wall-clock seconds for one iteration.
    pub secs: f64,
    /// `elements / secs` for the best iteration.
    pub elements_per_sec: f64,
}

fn measure(
    op: &str,
    threads: usize,
    elements: u64,
    iters: usize,
    mut f: impl FnMut(),
) -> BenchRecord {
    // Warm-up once (allocator, page faults), then best-of-N: the minimum is
    // the least noisy estimator for a throughput floor on a shared box.
    f();
    let mut best = f64::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        let secs = t.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
        }
    }
    BenchRecord {
        op: op.to_string(),
        threads,
        elements,
        secs: best,
        elements_per_sec: elements as f64 / best,
    }
}

/// Run every engine workload; `iters` timed iterations each (best-of-N).
pub fn run(iters: usize) -> Vec<BenchRecord> {
    let mut out = Vec::new();

    // reduce_by_key over 1M pairs — the core shuffle pattern of the CDI
    // job and the headline scaling number.
    let pairs: Vec<(u32, u64)> = (0..1_000_000u64).map(|i| ((i % 1024) as u32, i)).collect();
    for &threads in &[1usize, 2, 4, 8] {
        let pairs = pairs.clone();
        out.push(measure("reduce_by_key_1M", threads, 1_000_000, iters, move || {
            let ctx = ExecContext::with_threads(threads);
            let d = Dataset::from_vec(pairs.clone(), 16).unwrap();
            let r = d.reduce_by_key(16, |a, b| a + b).unwrap();
            black_box(r.count(&ctx));
        }));
    }

    // group_by_key over the same pairs: stresses the reduce-side concat.
    for &threads in &[1usize, 8] {
        let pairs = pairs.clone();
        out.push(measure("group_by_key_1M", threads, 1_000_000, iters, move || {
            let ctx = ExecContext::with_threads(threads);
            let d = Dataset::from_vec(pairs.clone(), 16).unwrap();
            let r = d.group_by_key(16).unwrap();
            black_box(r.count(&ctx));
        }));
    }

    // Global sort of 1M u64s: exercises the SortPlan merge path.
    let nums: Vec<u64> = (0..1_000_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
    for &threads in &[1usize, 8] {
        let nums = nums.clone();
        out.push(measure("sort_by_key_1M", threads, 1_000_000, iters, move || {
            let ctx = ExecContext::with_threads(threads);
            let d = Dataset::from_vec(nums.clone(), 16).unwrap();
            let r = d.sort_by_key(16, |x| *x).unwrap();
            black_box(r.count(&ctx));
        }));
    }

    // Narrow map/filter chain (no shuffle) at 4 threads.
    let data: Vec<i64> = (0..1_000_000).collect();
    out.push(measure("narrow_chain_1M", 4, 1_000_000, iters, move || {
        let ctx = ExecContext::with_threads(4);
        let d = Dataset::from_vec(data.clone(), 16).unwrap();
        black_box(d.map(|x| x * 3).filter(|x| x % 7 == 0).count(&ctx));
    }));

    // Cached dataset re-read at 8 threads: the path Arc-shared partitions
    // turn from a deep copy into a pointer bump.
    let nums2: Vec<u64> = (0..1_000_000u64).collect();
    out.push(measure("cached_reread_1M", 8, 1_000_000, iters, move || {
        let ctx = ExecContext::with_threads(8);
        let d = Dataset::from_vec(nums2.clone(), 16).unwrap().cache();
        black_box(d.count(&ctx)); // populate
        for _ in 0..8 {
            black_box(d.count(&ctx)); // re-reads
        }
    }));

    // BI drill-down over a 100k-row CDI table (Formula 4 per region).
    let schema = Schema::new(vec![
        ("region", ColumnType::Str),
        ("cdi", ColumnType::Float),
        ("service", ColumnType::Int),
    ])
    .unwrap();
    let mut table = Table::new(schema);
    for i in 0..100_000u64 {
        table
            .push_row(vec![
                Value::Str(format!("region-{}", i % 8)),
                Value::Float((i % 100) as f64 / 1e4),
                Value::Int(1440),
            ])
            .unwrap();
    }
    let query = Query::new().group_by("region").aggregate(
        "cdi",
        Aggregate::WeightedMean { value: "cdi".into(), weight: "service".into() },
    );
    out.push(measure("bi_drilldown_100k", 1, 100_000, iters, move || {
        black_box(query.run(&table).unwrap());
    }));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_positive_and_serializable() {
        let rec = measure("tiny", 1, 100, 1, || {
            black_box((0..100u64).sum::<u64>());
        });
        assert!(rec.secs > 0.0);
        assert!(rec.elements_per_sec > 0.0);
        let json = serde_json::to_string(&rec).unwrap();
        assert!(json.contains("\"op\""), "{json}");
        assert!(json.contains("\"elements_per_sec\""), "{json}");
    }
}
