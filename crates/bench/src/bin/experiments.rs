//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments <subcommand> [--seed N]
//!
//!   fig2    ticket distribution (27/44/29)
//!   fig3    event-period worked example (Example 2)
//!   ex3     weight worked example (w = 0.625)
//!   table4  CDI worked example (0.020/0.002/0.004/0.003)
//!   fig5    incident comparison: CDI vs AIR vs DP
//!   fig6    FY2024 trend (-40%/-80%/-35%)           [--days N, default 365]
//!   fig8    architecture comparison (Case 5)        [--days N, default 40]
//!   fig9a   event-level spike (Case 6)
//!   fig9b   event-level dip (Case 7)
//!   table5  A/B hypothesis tests (Case 8)           [--trials N, default 120]
//!   fig11   per-action Performance Indicator distributions
//!   all     everything above
//!   bench   engine throughput probes (JSON lines)   [--iters N, default 3]
//!   bench-serve  cdi-serve ingest/query probes      [--iters N] [--quick]
//!   drill   cdi-serve chaos drill → BENCH_PR6.json  [--seed N] [--quick]
//!   scenarios  detector scoring matrix → BENCH_PR8.json  [--seed N] [--quick]
//!   diagnose  outage-diag gates → BENCH_PR10.json  [--seed N] [--quick]
//!   bench-codec  cdipack codec gates → BENCH_PR9.json  [--iters N] [--quick] [--sizes-only]
//! ```
//!
//! Each run also writes machine-readable JSON into `results/`.

use bench::experiments::{fig2, fig5, fig6, fig8, fig9, golden, table5};
use bench::report::{fmt, fmt_ratio, sparkline, table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let seed = flag_value(&args, "--seed").unwrap_or(20250) as u64;
    let run = |name: &str| cmd == "all" || cmd == name || (cmd == "fig11" && name == "table5");
    let mut ran_any = false;

    // `bench` is deliberately NOT part of `all`: its output is wall-clock
    // timing, which must never land in the byte-stable `results/` files.
    if cmd == "bench" {
        let iters = flag_value(&args, "--iters").unwrap_or(3) as usize;
        run_bench(iters.max(1));
        return;
    }
    if cmd == "bench-serve" {
        let iters = flag_value(&args, "--iters").unwrap_or(3) as usize;
        let quick = args.iter().any(|a| a == "--quick");
        run_bench_serve(iters.max(1), quick);
        return;
    }
    if cmd == "drill" {
        let quick = args.iter().any(|a| a == "--quick");
        run_drill(seed, quick);
        return;
    }
    if cmd == "scenarios" {
        let quick = args.iter().any(|a| a == "--quick");
        run_scenarios(seed, quick);
        return;
    }
    if cmd == "diagnose" {
        let quick = args.iter().any(|a| a == "--quick");
        run_diagnose(seed, quick);
        return;
    }
    if cmd == "bench-codec" {
        let iters = flag_value(&args, "--iters").unwrap_or(3) as usize;
        let quick = args.iter().any(|a| a == "--quick");
        let sizes_only = args.iter().any(|a| a == "--sizes-only");
        run_bench_codec(iters.max(1), quick, sizes_only);
        return;
    }

    if run("fig2") {
        ran_any = true;
        run_fig2(seed);
    }
    if run("fig3") {
        ran_any = true;
        run_fig3();
    }
    if run("ex3") {
        ran_any = true;
        run_ex3();
    }
    if run("table4") {
        ran_any = true;
        run_table4();
    }
    if run("fig5") {
        ran_any = true;
        run_fig5(seed);
    }
    if run("fig6") {
        ran_any = true;
        let days = flag_value(&args, "--days").unwrap_or(365) as usize;
        run_fig6(seed, days);
        if args.iter().any(|a| a == "--ablate") {
            run_fig6_ablation(seed, days);
        }
    }
    if run("fig8") {
        ran_any = true;
        let days = flag_value(&args, "--days").unwrap_or(40) as usize;
        run_fig8(seed, days);
    }
    if run("fig9a") {
        ran_any = true;
        run_fig9a(seed);
    }
    if run("fig9b") {
        ran_any = true;
        run_fig9b(seed);
    }
    if run("table5") {
        ran_any = true;
        let trials = flag_value(&args, "--trials").unwrap_or(120) as usize;
        run_table5(seed, trials, cmd == "fig11" || cmd == "all");
    }
    if !ran_any {
        eprintln!("unknown subcommand '{cmd}'; see the doc comment for usage");
        std::process::exit(2);
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<i64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn save_json(name: &str, value: &impl serde::Serialize) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(json) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(&path, json);
        }
    }
}

fn heading(title: &str) {
    println!("\n==== {title} ====");
}

fn run_bench(iters: usize) {
    eprintln!("(engine throughput probes, best of {iters} timed iterations each)");
    let records = bench::perfbench::run(iters);
    for r in &records {
        // One JSON object per line so shell pipelines can pick workloads out.
        match serde_json::to_string(r) {
            Ok(line) => println!("{line}"),
            Err(e) => eprintln!("bench record failed to serialize: {e}"),
        }
    }
}

fn run_bench_serve(iters: usize, quick: bool) {
    eprintln!(
        "(cdi-serve probes, best of {iters} timed iterations{})",
        if quick { ", quick mode" } else { "" }
    );
    let records = bench::servebench::run(iters, quick);
    for r in &records {
        match serde_json::to_string(r) {
            Ok(line) => println!("{line}"),
            Err(e) => eprintln!("bench record failed to serialize: {e}"),
        }
    }
}

fn run_drill(seed: u64, quick: bool) {
    eprintln!(
        "(cdi-serve chaos drill, seed {seed}{}; wall-clock numbers vary, the agreement gate does not)",
        if quick { ", quick mode" } else { "" }
    );
    let report = bench::drill::run(seed, quick);
    println!(
        "SLO ramp: breach at {} producers (p99 ingest {:.0} us / staleness {} ms at the last step)",
        report
            .slo_ramp
            .breach_producers
            .map_or("no".to_string(), |p| p.to_string()),
        report.slo_ramp.steps.last().map_or(0.0, |s| s.p99_ingest_us),
        report.slo_ramp.steps.last().map_or(0, |s| s.staleness_ms),
    );
    println!(
        "chaos agreement: shard path {:?}, {} kill(s), {} respawn(s), {} restart(s), max CDI delta {:.3e}, {} lock-order violation(s) → {}",
        report.chaos_agreement.shard_path,
        report.chaos_agreement.kills,
        report.chaos_agreement.respawns,
        report.chaos_agreement.restarts,
        report.chaos_agreement.max_cdi_delta,
        report.chaos_agreement.lock_order_violations,
        if report.chaos_agreement.passed { "PASS" } else { "FAIL" },
    );
    println!(
        "resize overhead: steady {:.3}s vs resized {:.3}s ({} live resizes) → {:.2}x",
        report.resize_overhead.steady_secs,
        report.resize_overhead.resized_secs,
        report.resize_overhead.resizes,
        report.resize_overhead.overhead_ratio,
    );
    println!(
        "autoscale: peak {} shards, settled at {}",
        report.autoscale.peak_shards, report.autoscale.final_shards
    );
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_PR6.json", json + "\n") {
                eprintln!("cannot write BENCH_PR6.json: {e}");
                std::process::exit(1);
            }
            println!("wrote BENCH_PR6.json");
        }
        Err(e) => {
            eprintln!("drill report failed to serialize: {e}");
            std::process::exit(1);
        }
    }
    if !report.gate.passed {
        eprintln!("chaos agreement gate FAILED");
        std::process::exit(1);
    }
}

fn run_scenarios(seed: u64, quick: bool) {
    heading("Scenario suite — detector scoring matrix");
    eprintln!(
        "(seed {seed}{}; deterministic: two runs produce byte-identical BENCH_PR8.json)",
        if quick { ", quick mode" } else { "" }
    );
    let report = match bench::scenarios::run(seed, quick) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scenario evaluation failed: {e}");
            std::process::exit(1);
        }
    };
    let rows: Vec<Vec<String>> = report
        .matrix
        .cells
        .iter()
        .map(|c| {
            vec![
                c.scenario.clone(),
                c.detector.clone(),
                format!("{:.3}", c.score.precision),
                format!("{:.3}", c.score.recall),
                format!("{:.3}", c.score.f1),
                c.score
                    .mean_ttd_ms
                    .map_or("-".to_string(), |t| format!("{:.1}", t / 60_000.0)),
                format!("{}/{}", c.score.detected_windows, c.score.total_windows),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["scenario", "detector", "precision", "recall", "F1", "TTD (min)", "windows"],
            &rows,
        )
    );
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_PR8.json", json + "\n") {
                eprintln!("cannot write BENCH_PR8.json: {e}");
                std::process::exit(1);
            }
            println!("wrote BENCH_PR8.json");
        }
        Err(e) => {
            eprintln!("scenario report failed to serialize: {e}");
            std::process::exit(1);
        }
    }
    if report.passed() {
        println!("floor gate: PASS ({} floors)", report.floors.len());
    } else {
        for v in &report.violations {
            eprintln!("floor violation: {v}");
        }
        eprintln!("floor gate FAILED ({} violation(s))", report.violations.len());
        std::process::exit(1);
    }
}

fn run_diagnose(seed: u64, quick: bool) {
    heading("Outage diagnosis — correlated-scenario gates");
    eprintln!(
        "(seed {seed}{}; deterministic: two runs produce byte-identical BENCH_PR10.json)",
        if quick { ", quick mode" } else { "" }
    );
    let report = match bench::diagbench::run(seed, quick) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("diagnosis evaluation failed: {e}");
            std::process::exit(1);
        }
    };
    let rows: Vec<Vec<String>> = report
        .scenarios
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                format!("{:.3}", r.score.f1),
                format!("{}/{}", r.score.detected_windows, r.score.total_windows),
                format!("{}", r.diagnoses.len()),
                if r.exact_scope { "yes".into() } else { "NO".into() },
                if r.batch_live_identical { "yes".into() } else { "NO".into() },
                if r.shard_invariant { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["scenario", "F1", "windows", "diagnoses", "exact scope", "batch=live", "shard-inv"],
            &rows,
        )
    );
    for note in &report.notes {
        println!("note: {note}");
    }
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_PR10.json", json + "\n") {
                eprintln!("cannot write BENCH_PR10.json: {e}");
                std::process::exit(1);
            }
            println!("wrote BENCH_PR10.json");
        }
        Err(e) => {
            eprintln!("diagnosis report failed to serialize: {e}");
            std::process::exit(1);
        }
    }
    if report.passed() {
        println!("diagnosis gate: PASS ({} floors + structural gates)", report.floors.len());
    } else {
        for v in &report.violations {
            eprintln!("diagnosis violation: {v}");
        }
        eprintln!("diagnosis gate FAILED ({} violation(s))", report.violations.len());
        std::process::exit(1);
    }
}

fn run_bench_codec(iters: usize, quick: bool, sizes_only: bool) {
    eprintln!(
        "(cdipack codec gates, best of {iters} timed iterations{}{})",
        if quick { ", quick mode" } else { "" },
        if sizes_only { ", sizes only — deterministic report bytes" } else { "" },
    );
    let report = bench::codecbench::run(iters, quick, sizes_only);
    println!(
        "snapshot: {} targets, JSON {} B vs cdipack {} B → {:.2}x smaller",
        report.snapshot_targets,
        report.snapshot_json_bytes,
        report.snapshot_pack_bytes,
        report.snapshot_size_ratio,
    );
    if !sizes_only {
        eprintln!(
            "wire ingest ({} spans, 8 clients): cdipack batches {:.0} eps vs JSON lines {:.0} eps → {:.2}x",
            report.wire_spans, report.wire_pack_eps, report.wire_json_eps, report.ingest_speedup,
        );
        eprintln!(
            "in-process API: batched {:.0} eps vs per-span {:.0} eps (PR-5 reference box: {:.0} eps)",
            report.api_batch_eps, report.api_per_span_eps, report.ingest_pr5_reference_eps,
        );
        eprintln!(
            "restore (decode + rebuild, 8 shards): JSON {:.4}s vs cdipack {:.4}s → {:.2}x faster",
            report.restore_json_secs, report.restore_pack_secs, report.restore_speedup,
        );
    }
    println!(
        "restore agreement: cross-shard max |CDI delta| {:.3e}, dialect restores bit-identical: {}",
        report.cross_shard_max_abs_delta, report.dialects_bit_identical,
    );
    for g in &report.gates {
        println!(
            "gate {}: {}",
            g.name,
            if !g.evaluated {
                "SKIPPED (sizes-only)".to_string()
            } else if g.pass {
                format!("PASS ({:.3} >= {:.3})", g.value, g.min)
            } else {
                format!("FAIL ({:.3} < {:.3})", g.value, g.min)
            }
        );
    }
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_PR9.json", json + "\n") {
                eprintln!("cannot write BENCH_PR9.json: {e}");
                std::process::exit(1);
            }
            println!("wrote BENCH_PR9.json");
        }
        Err(e) => {
            eprintln!("codec report failed to serialize: {e}");
            std::process::exit(1);
        }
    }
    if !report.pass {
        eprintln!("codec gate FAILED");
        std::process::exit(1);
    }
}

fn run_fig2(seed: u64) {
    heading("Fig. 2 — distribution of tickets related to ECS stability");
    let r = fig2::run(seed, 120);
    println!(
        "{}",
        table(
            &["category", "share (measured)", "share (paper)"],
            &[
                vec!["unavailability".into(), format!("{:.1}%", 100.0 * r.unavailability_share), "27%".into()],
                vec!["performance".into(), format!("{:.1}%", 100.0 * r.performance_share), "44%".into()],
                vec!["control-plane".into(), format!("{:.1}%", 100.0 * r.control_plane_share), "29%".into()],
            ],
        )
    );
    println!(
        "tickets: {}   classifier accuracy vs ground truth: {:.1}%",
        r.total,
        100.0 * r.classifier_accuracy
    );
    save_json("fig2", &r);
}

fn run_fig3() {
    heading("Fig. 3 / Example 2 — event-period derivation");
    let r = golden::fig3();
    println!("slow_io period  : [{}, {}) min (windowed trace-back)", r.slow_io_period.0, r.slow_io_period.1);
    println!("ddos_blackhole  : [{}, {}) min (t2 paired with t4)", r.ddos_period.0, r.ddos_period.1);
    println!("dirty markers discarded: {} (the add at t3, the del at t5)", r.discarded_markers);
    save_json("fig3", &r);
}

fn run_ex3() {
    heading("Example 3 — event weight");
    let r = golden::ex3();
    println!("expert weight l3   = {} (paper: 0.75)", fmt(r.expert_weight));
    println!("customer weight p2 = {} (paper: 0.5)", fmt(r.customer_weight));
    println!("final weight w     = {} (paper: 0.625)", fmt(r.final_weight));
    save_json("ex3", &r);
}

fn run_table4() {
    heading("Table IV / Example 4 — CDI calculation");
    let r = golden::table4();
    println!(
        "{}",
        table(
            &["VM", "CDI (measured)", "CDI (paper)"],
            &[
                vec!["1".into(), format!("{:.6}", r.vm1), "0.020".into()],
                vec!["2".into(), format!("{:.6}", r.vm2), "0.002".into()],
                vec!["3".into(), format!("{:.6}", r.vm3), "0.004".into()],
                vec!["All".into(), format!("{:.6}", r.all), "0.003".into()],
            ],
        )
    );
    save_json("table4", &r);
}

fn run_fig5(seed: u64) {
    heading("Fig. 5 — stability evaluation on selected incidents");
    let r = fig5::run(seed);
    let daily = r.daily().clone();
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                row.label.clone(),
                fmt(row.cdi_u),
                fmt(row.cdi_p),
                fmt(row.cdi_c),
                fmt(row.air),
                fmt(row.dp),
                fmt_ratio(row.cdi_u, daily.cdi_u),
                fmt_ratio(row.cdi_c, daily.cdi_c),
                fmt_ratio(row.dp, daily.dp),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["day", "CDI-U", "CDI-P", "CDI-C", "AIR", "DP", "U/daily", "C/daily", "DP/daily"],
            &rows,
        )
    );
    println!("paper shape: 20240425 & 20240702 move CDI-U/AIR/DP; 20250107 moves ONLY CDI-C.");
    save_json("fig5", &r);
}

fn run_fig6(seed: u64, days: usize) {
    heading("Fig. 6 / Case 4 — overall CDI across the fiscal year");
    eprintln!("(simulating {days} days; use --days to shorten)");
    let r = fig6::run(seed, days);
    println!("CDI-U  {}", sparkline(&r.smooth_u));
    println!("CDI-P  {}", sparkline(&r.smooth_p));
    println!("CDI-C  {}", sparkline(&r.smooth_c));
    println!(
        "{}",
        table(
            &["sub-metric", "reduction (measured)", "reduction (paper)"],
            &[
                vec!["Unavailability".into(), format!("{:.0}%", 100.0 * r.reduction_u), "40%".into()],
                vec!["Performance".into(), format!("{:.0}%", 100.0 * r.reduction_p), "80%".into()],
                vec!["Control-plane".into(), format!("{:.0}%", 100.0 * r.reduction_c), "35%".into()],
            ],
        )
    );
    println!(
        "Mann-Kendall trend p-values (U/P/C): {} / {} / {}  — all declining (Sen slopes {} / {} / {})",
        fmt(r.trend_p[0]),
        fmt(r.trend_p[1]),
        fmt(r.trend_p[2]),
        fmt(r.sen_slope[0]),
        fmt(r.sen_slope[1]),
        fmt(r.sen_slope[2]),
    );
    save_json("fig6", &r);
}

fn run_fig6_ablation(seed: u64, days: usize) {
    heading("Fig. 6 ablation — per-strategy attribution (Section VI-A)");
    let results = fig6::run_ablation(seed, days);
    let labels = ["U-only governance", "P-only governance", "C-only governance"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .zip(labels)
        .map(|(r, label)| {
            vec![
                label.to_string(),
                format!("{:+.0}%", -100.0 * r.reduction_u),
                format!("{:+.0}%", -100.0 * r.reduction_p),
                format!("{:+.0}%", -100.0 * r.reduction_c),
            ]
        })
        .collect();
    println!("{}", table(&["strategy", "ΔU", "ΔP", "ΔC"], &rows));
    println!("expected: a strong diagonal — each strategy moves only its own sub-metric.");
    save_json("fig6_ablation", &results);
}

fn run_fig8(seed: u64, days: usize) {
    heading("Fig. 8 / Case 5 — Performance Indicator of deployment architectures");
    let r = fig8::run(seed, days);
    println!("homogeneous  {}", sparkline(&r.homogeneous));
    println!("hybrid       {}", sparkline(&r.hybrid));
    let rows: Vec<Vec<String>> = (0..days)
        .step_by(3)
        .map(|d| {
            vec![
                format!("{d}"),
                fmt(r.homogeneous[d]),
                fmt(r.hybrid[d]),
                fmt_ratio(r.hybrid[d], r.homogeneous[d]),
            ]
        })
        .collect();
    println!("{}", table(&["day", "homogeneous PI", "hybrid PI", "hybrid/homog"], &rows));
    println!(
        "paper shape: parity until day {}, divergence peaks ~day 20, convergence by day {}.",
        r.bug_start_day, r.converge_day
    );
    save_json("fig8", &r);
}

fn run_fig9a(seed: u64) {
    heading("Fig. 9(a) / Case 6 — event-level CDI of vm_allocation_failed");
    let r = fig9::run_a(seed, 30, 14);
    println!("series {}", sparkline(&r.series));
    for (day, kind) in &r.detections {
        println!("detector: {kind} on day {day} (paper: spike on day 14, recovery day 15)");
    }
    save_json("fig9a", &r);
}

fn run_fig9b(seed: u64) {
    heading("Fig. 9(b) / Case 7 — event-level CDI of inspect_cpu_power_tdp");
    let r = fig9::run_b(seed, 30, 13, 18);
    println!("series {}", sparkline(&r.series));
    for (day, kind) in &r.detections {
        println!("detector: {kind} on day {day} (paper: decline from day 13, recovery from day 18)");
    }
    save_json("fig9b", &r);
}

fn run_table5(seed: u64, trials: usize, show_fig11: bool) {
    heading("Table V / Case 8 — hypothesis test results");
    let r = table5::run(seed, trials);
    let mut rows = Vec::new();
    for t in &r.tests {
        rows.push(vec![
            t.name.clone(),
            t.omnibus.clone(),
            fmt(t.p_value),
            if t.significant { "True".into() } else { "False".into() },
        ]);
        for &(a, b, p) in &t.posthoc {
            let label = |i: usize| (b'A' + i as u8) as char;
            rows.push(vec![
                format!("  {}-{}", label(a), label(b)),
                "post-hoc".into(),
                fmt(p),
                if p < 0.05 { "True".into() } else { "False".into() },
            ]);
        }
    }
    println!("{}", table(&["sub-metric / pair", "test", "p-value", "significant"], &rows));
    println!("paper: U p=0.47 (ns), C p=0.89 (ns), P p≈0 with all pairs significant.");
    if show_fig11 {
        heading("Fig. 11 — Performance Indicator of each operation action");
        let max = r.perf_means.iter().cloned().fold(f64::MIN, f64::max);
        let rows: Vec<Vec<String>> = (0..3)
            .map(|a| {
                let (q1, med, q3) = r.perf_quartiles[a];
                vec![
                    format!("{}", (b'A' + a as u8) as char),
                    fmt(r.perf_means[a]),
                    format!("{:.2}", r.perf_means[a] / max * 0.42),
                    fmt(q1),
                    fmt(med),
                    fmt(q3),
                ]
            })
            .collect();
        println!(
            "{}",
            table(
                &["action", "mean PI", "normalized (paper: .40/.08/.42)", "q1", "median", "q3"],
                &rows,
            )
        );
        println!("action B wins — selected for nc_down_prediction, as in the paper.");
    }
    save_json("table5", &r);
}
