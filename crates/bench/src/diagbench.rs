//! The diagnosis evaluation (`experiments diagnose`).
//!
//! Runs the outage-diag detector over the four correlated scenario
//! families — exactly the cells where per-target detectors are
//! scope-blind — and packages scores, the diagnoses themselves, and three
//! structural gates per scenario into the deterministic `BENCH_PR10.json`
//! artifact CI byte-compares across runs:
//!
//! - `exact_scope` — every labeled window has an overlapping diagnosis
//!   whose scope resolves to the *same VM set* as the label (VM-set
//!   equality, not hierarchy-level equality: the quick fleet's degenerate
//!   hierarchy legitimately reports a one-cluster AZ at a higher level).
//! - `batch_live_identical` — the batch-table and sharded live-service
//!   replays diagnose byte-identically.
//! - `shard_invariant` — the live replay diagnoses identically at 1, 2,
//!   and 3 shards.

use std::collections::BTreeSet;

use cdi_core::error::Result;
use outage_diag::{diag_floors, DiagDetector, OutageDiagnosis};
use scenario_suite::detector::Detector;
use scenario_suite::truth::TruthScope;
use scenario_suite::{
    build, check_floors, score, Floor, MatrixCell, ScenarioConfig, ScenarioRun, Score, ScoreConfig,
    ScoreMatrix,
};
use serde::Serialize;
use simfleet::topology::{Fleet, VmId};

/// The four correlated scenario families the diagnosis gate covers.
pub const CORRELATED: [&str; 4] = [
    "bad-rollout-wave",
    "correlated-switch-failure",
    "power-domain-event",
    "regional-failover",
];

/// One evaluated scenario: scores plus the structural gates.
#[derive(Debug, Clone, Serialize)]
pub struct DiagScenarioResult {
    /// Scenario name.
    pub scenario: String,
    /// Precision / recall / F1 / TTD of the diagnosis detections.
    pub score: Score,
    /// The diagnoses themselves (live-replay path, default shards).
    pub diagnoses: Vec<OutageDiagnosis>,
    /// Every labeled window exactly diagnosed (VM-set equality).
    pub exact_scope: bool,
    /// Batch table and live replay diagnose byte-identically.
    pub batch_live_identical: bool,
    /// Live replay identical across 1, 2, and 3 shards.
    pub shard_invariant: bool,
}

/// Everything `experiments diagnose` writes to `BENCH_PR10.json`.
#[derive(Debug, Clone, Serialize)]
pub struct DiagReport {
    /// Seed the catalog was built with.
    pub seed: u64,
    /// Whether the reduced quick-mode fleet was used.
    pub quick: bool,
    /// Per-scenario results, in [`CORRELATED`] order.
    pub scenarios: Vec<DiagScenarioResult>,
    /// The pinned diagnosis floors.
    pub floors: Vec<Floor>,
    /// Floor breaches and failed structural gates (empty = pass).
    pub violations: Vec<String>,
    /// The measured-gap record accompanying the gate.
    pub notes: Vec<String>,
}

impl DiagReport {
    /// Whether every gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn vm_set(scope: &TruthScope, fleet: &Fleet) -> BTreeSet<VmId> {
    scope.vms(fleet).into_iter().collect()
}

/// Run the diagnosis evaluation: catalog → diagnose → gates.
pub fn run(seed: u64, quick: bool) -> Result<DiagReport> {
    let cfg = if quick { ScenarioConfig::quick(seed) } else { ScenarioConfig::new(seed) };
    let detector = DiagDetector::default();
    let mut scenarios = Vec::new();
    let mut cells = Vec::new();
    for name in CORRELATED {
        let s = build(name, &cfg)?;
        let run = ScenarioRun::prepare(&s)?;
        let batch = DiagDetector { shards: None, ..detector.clone() }.diagnose(&run)?;
        let live1 = DiagDetector { shards: Some(1), ..detector.clone() }.diagnose(&run)?;
        let live2 = detector.diagnose(&run)?;
        let live3 = DiagDetector { shards: Some(3), ..detector.clone() }.diagnose(&run)?;
        let batch_live_identical = batch == live2;
        let shard_invariant = live1 == live2 && live2 == live3;
        let score_cfg =
            ScoreConfig { slack_ms: s.tick_ms, grace_ms: 5 * simfleet::scenario::MINUTE };
        let sc = score(&s.truth, &detector.detect(&run)?, run.fleet(), &score_cfg);
        let exact_scope = s.truth.windows().iter().all(|w| {
            let want = vm_set(&w.scope, run.fleet());
            live2.iter().any(|d| {
                d.category == w.category
                    && d.start < w.range.end
                    && d.end > w.range.start
                    && vm_set(&d.scope, run.fleet()) == want
            })
        });
        cells.push(MatrixCell {
            scenario: name.to_string(),
            detector: "outage-diag".to_string(),
            score: sc.clone(),
        });
        scenarios.push(DiagScenarioResult {
            scenario: name.to_string(),
            score: sc,
            diagnoses: live2,
            exact_scope,
            batch_live_identical,
            shard_invariant,
        });
    }
    let matrix = ScoreMatrix { seed, quick, tick_ms: cfg.tick_ms, cells };
    let floors = diag_floors(quick);
    let mut violations = check_floors(&matrix, &floors);
    for r in &scenarios {
        if !r.exact_scope {
            violations
                .push(format!("{}: no diagnosis names the exact root scope VM set", r.scenario));
        }
        if !r.batch_live_identical {
            violations.push(format!("{}: batch and live diagnoses differ", r.scenario));
        }
        if !r.shard_invariant {
            violations.push(format!("{}: diagnoses vary with serve shard count", r.scenario));
        }
    }
    let notes = vec![
        "surge stays ungated on bad-rollout-wave and power-domain-event: its fleet-wide \
         event-count scan fires on the full fleet but carries no topology (and is silent \
         on the quick fleet), so it cannot localize a cluster- or AZ-scoped wave — the \
         measured gap outage-diag closes."
            .to_string(),
        "ksigma stays ungated on bad-rollout-wave and power-domain-event: it alerts per VM \
         with no notion of blast radius, so correlated incidents surface only as unscoped \
         per-target anomalies."
            .to_string(),
    ];
    Ok(DiagReport { seed, quick, scenarios, floors, violations, notes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_is_deterministic_and_passes_gates() {
        let a = run(20250, true).unwrap();
        let b = run(20250, true).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "diagnosis report must be byte-deterministic"
        );
        assert!(a.passed(), "gate violations: {:?}", a.violations);
        assert_eq!(a.scenarios.len(), 4);
        for r in &a.scenarios {
            assert!(r.exact_scope && r.batch_live_identical && r.shard_invariant, "{r:?}");
        }
    }
}
