//! Plain-text rendering of experiment results: aligned tables and ASCII
//! sparkline series, so `cargo run --bin experiments` output reads like the
//! paper's tables and figures.

/// Render rows as an aligned table with a header.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&head));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out
}

/// Render a numeric series as an ASCII sparkline (8 levels), normalized to
/// its own min/max.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    values
        .iter()
        .map(|v| {
            let idx = (((v - lo) / span) * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[idx]
        })
        .collect()
}

/// Format a float with 4 significant-ish decimals, trimming noise.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    }
}

/// Format a ratio as `×N.NN` relative to a baseline (`-` when the baseline
/// is zero).
pub fn fmt_ratio(v: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        "-".to_string()
    } else {
        format!("x{:.2}", v / baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["day", "cdi"],
            &[
                vec!["Daily".into(), "0.001".into()],
                vec!["20240425".into(), "0.1".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("day"));
        assert!(lines[2].ends_with("0.001"));
        // All data lines equally wide.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 1.0, 0.5]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
        assert!(sparkline(&[]).is_empty());
        // Constant series renders without NaN panic.
        assert_eq!(sparkline(&[2.0, 2.0]).chars().count(), 2);
    }

    #[test]
    fn fmt_variants() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234567), "0.1235");
        assert!(fmt(0.00012).contains('e'));
        assert_eq!(fmt_ratio(2.0, 1.0), "x2.00");
        assert_eq!(fmt_ratio(2.0, 0.0), "-");
    }
}
