//! Experiment harness: one module per table/figure of the paper's
//! evaluation, each returning a structured, serializable result that the
//! `experiments` binary renders and `EXPERIMENTS.md` records.
//!
//! The experiments exercise the *full pipeline* (simulate → collect →
//! extract → period/weight → CDI → aggregate); nothing about the paper's
//! curves is hard-coded beyond the fault schedules in
//! `simfleet::scenario`.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod codecbench;
pub mod diagbench;
pub mod drill;
pub mod experiments;
pub mod perfbench;
pub mod report;
pub mod scenarios;
pub mod servebench;

use cloudbot::pipeline::DailyPipeline;

/// A pipeline whose collector samples VM metrics every `step_min` minutes
/// and whose windowed-event catalog entries match that step (so that event
/// periods still tile the damage they represent).
///
/// The year-long experiments use 5-minute sampling to keep runtimes
/// laptop-friendly; the incident-level experiments use the paper's
/// 1-minute windows.
pub fn pipeline_with_step(step_min: i64) -> DailyPipeline {
    DailyPipeline::with_step_ms(step_min * 60_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdi_core::catalog::PeriodKind;

    #[test]
    fn pipeline_step_rewrites_windows() {
        let p = pipeline_with_step(5);
        assert_eq!(p.collector.vm_step, 5 * 60_000);
        match p.catalog.get("slow_io").unwrap().period {
            PeriodKind::Windowed { window_ms } => assert_eq!(window_ms, 5 * 60_000),
            ref other => panic!("unexpected period {other:?}"),
        }
        // Non-windowed kinds untouched.
        assert!(matches!(
            p.catalog.get("ddos_blackhole").unwrap().period,
            PeriodKind::StatefulStart { .. }
        ));
    }
}
