//! Fig. 5 — stability evaluation on selected incidents: CDI sub-metrics vs
//! the downtime baselines (Annual Interruption Rate, Downtime Percentage).
//!
//! The paper's point: the 2024-04-25 and 2024-07-02 incidents move AIR/DP
//! *and* CDI-U, but the 2025-01-07 incident (purchase/modify broken,
//! existing VMs fine) is invisible to AIR/DP while CDI-C captures it.

use cdi_core::baseline::fleet_baselines;
use cdi_core::indicator::{aggregate, ServicePeriod};
use serde::Serialize;
use simfleet::scenario::{fig5_incident_days, DAY};

use crate::pipeline_with_step;

/// One row of the Fig. 5 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// Day label.
    pub label: String,
    /// CDI Unavailability Indicator.
    pub cdi_u: f64,
    /// CDI Performance Indicator.
    pub cdi_p: f64,
    /// CDI Control-Plane Indicator.
    pub cdi_c: f64,
    /// Annual Interruption Rate.
    pub air: f64,
    /// Downtime Percentage.
    pub dp: f64,
}

/// Fig. 5 result: one row per day, `Daily` first.
#[derive(Debug, Serialize)]
pub struct Fig5Result {
    /// The four day rows.
    pub rows: Vec<Fig5Row>,
}

impl Fig5Result {
    /// The baseline (`Daily`) row.
    pub fn daily(&self) -> &Fig5Row {
        &self.rows[0]
    }

    /// Row by label.
    pub fn get(&self, label: &str) -> Option<&Fig5Row> {
        self.rows.iter().find(|r| r.label == label)
    }
}

/// Run the experiment over the four scenario days.
pub fn run(seed: u64) -> Fig5Result {
    let pipeline = pipeline_with_step(1);
    let mut rows = Vec::new();
    for day in fig5_incident_days(seed) {
        let events = pipeline.events(&day.world, 0, DAY);
        let vm_rows = pipeline
            .vm_cdi_rows_from_events(&day.world, &events, 0, DAY)
            .expect("pipeline runs");
        let agg = aggregate(&vm_rows).expect("non-empty fleet");
        let spans = pipeline.vm_spans(&day.world, &events, DAY).expect("pipeline runs");
        let period = ServicePeriod::new(0, DAY).expect("valid period");
        let baselines =
            fleet_baselines(spans.values().map(|s| (s.as_slice(), period))).expect("fleet");
        rows.push(Fig5Row {
            label: day.label.to_string(),
            cdi_u: agg.unavailability,
            cdi_p: agg.performance,
            cdi_c: agg.control_plane,
            air: baselines.annual_interruption_rate,
            dp: baselines.downtime_percentage,
        });
    }
    Fig5Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let r = run(425);
        let daily = r.daily().clone();

        // 20240425 (AZ outage): unavailability metrics all spike.
        let d1 = r.get("20240425").unwrap();
        assert!(d1.cdi_u > 10.0 * daily.cdi_u.max(1e-9), "CDI-U spikes: {d1:?}");
        assert!(d1.dp > 10.0 * daily.dp.max(1e-9), "DP spikes");
        assert!(d1.air > 2.0 * daily.air.max(1e-9), "AIR rises");

        // 20240702 (network): also visible to all unavailability metrics,
        // plus a performance component from the packet loss.
        let d2 = r.get("20240702").unwrap();
        assert!(d2.cdi_u > 10.0 * daily.cdi_u.max(1e-9));
        assert!(d2.cdi_p > 2.0 * daily.cdi_p.max(1e-9), "packet loss shows in CDI-P");
        assert!(d2.dp > 10.0 * daily.dp.max(1e-9));

        // 20250107 (control-plane only): THE headline — AIR and DP stay at
        // daily levels while CDI-C explodes.
        let d3 = r.get("20250107").unwrap();
        assert!(d3.cdi_c > 20.0 * daily.cdi_c.max(1e-9), "CDI-C captures it: {d3:?}");
        assert!(d3.dp < 3.0 * daily.dp.max(1e-9), "DP blind: {} vs {}", d3.dp, daily.dp);
        assert!(d3.air < 3.0 * daily.air.max(1e-9), "AIR blind");
        assert!(d3.cdi_u < 3.0 * daily.cdi_u.max(1e-9), "existing VMs unaffected");
    }
}
