//! Table V + Fig. 11 / Case 8 — operation-action optimization by A/B test.
//!
//! Three candidate actions for the `nc_down_prediction` rule are A/B-tested
//! over three months; each affected VM's CDI over the following two days is
//! one observation. The paper's outcome: omnibus tests find no difference
//! in the Unavailability (p = 0.47) and Control-plane (p = 0.89)
//! sub-metrics, a decisive difference in Performance (p ≈ 0), all three
//! post-hoc pairs significant (A-C at p = 0.03), and per-action PI means of
//! 0.40 / 0.08 / 0.42 — action B wins.

use cdi_core::indicator::{compute_vm_cdi, ServicePeriod};
use serde::Serialize;
use simfleet::scenario::table5_abtest;
use statskit::abtest::{run_ab_test, AbTestConfig, AbTestReport};

use crate::pipeline_with_step;

/// One sub-metric's hypothesis-test outcome.
#[derive(Debug, Serialize)]
pub struct SubmetricTest {
    /// Sub-metric name.
    pub name: String,
    /// Which omnibus test the Fig. 10 workflow selected.
    pub omnibus: String,
    /// Omnibus p-value.
    pub p_value: f64,
    /// Whether significant at 0.05.
    pub significant: bool,
    /// Post-hoc pairs `(a, b, p)` when run.
    pub posthoc: Vec<(usize, usize, f64)>,
}

/// Table V + Fig. 11 result.
#[derive(Debug, Serialize)]
pub struct Table5Result {
    /// Per-sub-metric tests in paper order (U, C, P).
    pub tests: Vec<SubmetricTest>,
    /// Per-action Performance Indicator means (Fig. 11; paper: 0.40 / 0.08
    /// / 0.42 normalized).
    pub perf_means: [f64; 3],
    /// Per-action PI quartiles (q1, median, q3) for the Fig. 11 box view.
    pub perf_quartiles: [(f64, f64, f64); 3],
    /// Number of observations per action.
    pub n_per_action: usize,
}

fn describe_report(name: &str, report: &AbTestReport) -> SubmetricTest {
    SubmetricTest {
        name: name.to_string(),
        omnibus: format!("{:?}", report.omnibus),
        p_value: report.p_value,
        significant: report.significant,
        posthoc: report
            .posthoc
            .as_ref()
            .map(|(_, cmps)| {
                cmps.iter().map(|c| (c.group_a, c.group_b, c.p_value)).collect()
            })
            .unwrap_or_default(),
    }
}

/// Run the experiment with `trials_per_action` VMs per arm.
pub fn run(seed: u64, trials_per_action: usize) -> Table5Result {
    let scenario = table5_abtest(seed, trials_per_action);
    let pipeline = pipeline_with_step(1);
    // One extraction over the whole A/B horizon, sliced per trial window.
    let horizon = scenario
        .trials
        .iter()
        .map(|t| t.window_start + scenario.window)
        .max()
        .unwrap_or(0);
    let events =
        pipeline.events_chunked(&scenario.world, 0, horizon, simfleet::scenario::DAY);
    let spans_by_target =
        pipeline.spans_by_target(&events, horizon).expect("pipeline runs");

    let mut groups_u: [Vec<f64>; 3] = Default::default();
    let mut groups_p: [Vec<f64>; 3] = Default::default();
    let mut groups_c: [Vec<f64>; 3] = Default::default();
    let empty = Vec::new();
    for trial in &scenario.trials {
        let all_spans = spans_by_target
            .get(&cdi_core::event::Target::Vm(trial.vm))
            .unwrap_or(&empty);
        // Only the trial's own 2-day observation window counts; the span
        // clipping inside Algorithm 1 handles the cut.
        let period =
            ServicePeriod::new(trial.window_start, trial.window_start + scenario.window)
                .expect("valid window");
        let row = compute_vm_cdi(trial.vm, all_spans, period).expect("validated spans");
        groups_u[trial.action].push(row.unavailability);
        groups_p[trial.action].push(row.performance);
        groups_c[trial.action].push(row.control_plane);
    }

    let config = AbTestConfig::default();
    let test = |groups: &[Vec<f64>; 3], name: &str| {
        let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
        let report = run_ab_test(&refs, &config).expect("valid groups");
        describe_report(name, &report)
    };
    let tests = vec![
        test(&groups_u, "Unavailability"),
        test(&groups_c, "Control-plane"),
        test(&groups_p, "Performance"),
    ];

    let mut perf_means = [0.0; 3];
    let mut perf_quartiles = [(0.0, 0.0, 0.0); 3];
    for a in 0..3 {
        perf_means[a] = statskit::describe::mean(&groups_p[a]).expect("non-empty");
        perf_quartiles[a] = (
            statskit::describe::quantile(&groups_p[a], 0.25).expect("non-empty"),
            statskit::describe::quantile(&groups_p[a], 0.5).expect("non-empty"),
            statskit::describe::quantile(&groups_p[a], 0.75).expect("non-empty"),
        );
    }
    Table5Result { tests, perf_means, perf_quartiles, n_per_action: trials_per_action }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_v_significance_pattern() {
        let r = run(1105, 80);
        let u = &r.tests[0];
        let c = &r.tests[1];
        let p = &r.tests[2];
        // U and C: no significant difference between actions.
        assert!(!u.significant, "U p = {}", u.p_value);
        assert!(!c.significant, "C p = {}", c.p_value);
        // Performance: decisively significant, with post-hoc pairs.
        assert!(p.significant, "P p = {}", p.p_value);
        assert!(p.p_value < 1e-4, "P p = {}", p.p_value);
        assert_eq!(p.posthoc.len(), 3);
        for &(a, b, pv) in &p.posthoc {
            assert!(pv < 0.05, "pair ({a},{b}) p = {pv}");
        }
    }

    #[test]
    fn action_b_has_the_paper_fig11_profile() {
        let r = run(1105, 80);
        let [a, b, c] = r.perf_means;
        // Paper's normalized means: 0.40 / 0.08 / 0.42 — i.e. B is ~5x
        // better and C slightly worse than A.
        assert!(b < 0.35 * a, "B ({b}) far below A ({a})");
        assert!(c > a, "C ({c}) slightly above A ({a})");
        assert!(c < 1.3 * a, "C close to A");
        // Normalized to the worst action, the pattern matches the figure.
        let norm = [a / c, b / c, 1.0];
        assert!((norm[0] - 0.40 / 0.42).abs() < 0.15, "A/C = {}", norm[0]);
        assert!((norm[1] - 0.08 / 0.42).abs() < 0.12, "B/C = {}", norm[1]);
    }
}
