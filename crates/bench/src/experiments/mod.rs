//! One module per reproduced table/figure. See DESIGN.md §3 for the index.

pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod golden;
pub mod table5;
