//! Fig. 8 / Case 5 — Performance Indicator of the two deployment
//! architectures during the homogeneous → hybrid transition.
//!
//! Paper: the two curves track each other until Day 13, when the hybrid
//! pool's Performance Indicator climbs (the core-overlap incompatibility on
//! one machine model), peaks while mitigation rolls out, and converges back
//! by Day 28.

use cdi_core::indicator::aggregate;
use serde::Serialize;
use simfleet::scenario::{fig8_architecture, DAY};

use crate::pipeline_with_step;

/// Fig. 8 result: one Performance-Indicator series per pool.
#[derive(Debug, Serialize)]
pub struct Fig8Result {
    /// Daily PI of the homogeneous-deployment pool.
    pub homogeneous: Vec<f64>,
    /// Daily PI of the hybrid-deployment pool.
    pub hybrid: Vec<f64>,
    /// Day the divergence starts (ground truth: 13).
    pub bug_start_day: usize,
    /// Day the curves re-converge (ground truth: 28).
    pub converge_day: usize,
}

impl Fig8Result {
    /// Hybrid-to-homogeneous PI ratio per day (1.0 ≈ parity).
    pub fn divergence(&self) -> Vec<f64> {
        self.homogeneous
            .iter()
            .zip(&self.hybrid)
            .map(|(h, y)| if *h > 0.0 { y / h } else { f64::NAN })
            .collect()
    }
}

/// Run the experiment for `days` days (paper window: 40; bug on day 13,
/// peak ~20, convergence by 28).
pub fn run(seed: u64, days: usize) -> Fig8Result {
    let (bug_start, peak, converge) = (13usize, 20usize, 28usize);
    let scenario = fig8_architecture(seed, days, bug_start, peak, converge);
    let pipeline = pipeline_with_step(1);
    let mut homogeneous = Vec::with_capacity(days);
    let mut hybrid = Vec::with_capacity(days);
    let homo_vms: Vec<u64> = scenario
        .homogeneous_ncs
        .iter()
        .flat_map(|&nc| scenario.world.fleet.vms_on(nc).to_vec())
        .collect();
    let hybrid_vms: Vec<u64> = scenario
        .hybrid_ncs
        .iter()
        .flat_map(|&nc| scenario.world.fleet.vms_on(nc).to_vec())
        .collect();
    for d in 0..days {
        let start = d as i64 * DAY;
        let rows = pipeline
            .vm_cdi_rows(&scenario.world, start, start + DAY)
            .expect("pipeline runs");
        let pool = |vms: &[u64]| {
            let subset: Vec<_> =
                rows.iter().filter(|r| vms.contains(&r.vm)).copied().collect();
            aggregate(&subset).expect("non-empty pool").performance
        };
        homogeneous.push(pool(&homo_vms));
        hybrid.push(pool(&hybrid_vms));
    }
    Fig8Result { homogeneous, hybrid, bug_start_day: bug_start, converge_day: converge }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_diverge_then_converge() {
        let r = run(85, 32);
        let parity = |d: usize| (r.hybrid[d] - r.homogeneous[d]).abs();
        // Before the bug: curves comparable (both near background level).
        let pre: f64 = (3..12).map(parity).sum::<f64>() / 9.0;
        // During the bug's peak: hybrid clearly above homogeneous.
        let peak_excess: f64 =
            (18..22).map(|d| r.hybrid[d] - r.homogeneous[d]).sum::<f64>() / 4.0;
        assert!(
            peak_excess > 5.0 * pre.max(1e-6),
            "peak excess {peak_excess} vs pre-divergence gap {pre}"
        );
        // After convergence: back to parity.
        let post: f64 = (28..32).map(parity).sum::<f64>() / 4.0;
        assert!(post < peak_excess / 5.0, "post {post} vs peak {peak_excess}");
    }
}
