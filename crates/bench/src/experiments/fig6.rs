//! Fig. 6 / Case 4 — the Fiscal Year 2024 smoothed CDI trend.
//!
//! Paper: over FY2024 the Unavailability, Performance and Control-plane
//! Indicators dropped by ≈40%, ≈80% and ≈35% respectively, with Performance
//! falling the most because its governance was earliest-stage.

use cdi_core::indicator::aggregate;
use serde::Serialize;
use simfleet::scenario::{fig6_fy2024, fig6_fy2024_selective, DAY};
use simfleet::SimWorld;
use statskit::describe::moving_average;

use crate::pipeline_with_step;

/// Fig. 6 result: daily and smoothed yearly curves per sub-metric.
#[derive(Debug, Serialize)]
pub struct Fig6Result {
    /// Raw daily aggregated CDI-U.
    pub daily_u: Vec<f64>,
    /// Raw daily aggregated CDI-P.
    pub daily_p: Vec<f64>,
    /// Raw daily aggregated CDI-C.
    pub daily_c: Vec<f64>,
    /// Smoothed curves (28-day moving average).
    pub smooth_u: Vec<f64>,
    /// Smoothed CDI-P.
    pub smooth_p: Vec<f64>,
    /// Smoothed CDI-C.
    pub smooth_c: Vec<f64>,
    /// Relative reduction of each smoothed curve start→end (paper: 0.40 /
    /// 0.80 / 0.35).
    pub reduction_u: f64,
    /// Performance reduction.
    pub reduction_p: f64,
    /// Control-plane reduction.
    pub reduction_c: f64,
    /// Mann–Kendall two-sided p-values for the daily curves (all three
    /// should be decisively decreasing).
    pub trend_p: [f64; 3],
    /// Sen's slope per daily curve (all three should be negative).
    pub sen_slope: [f64; 3],
}

/// Run the experiment over `days` simulated days (365 for the paper's
/// year; tests use fewer). VM metrics are sampled every 5 minutes to keep
/// the year tractable.
pub fn run(seed: u64, days: usize) -> Fig6Result {
    run_world(fig6_fy2024(seed, days), days)
}

/// The per-strategy ablation (Section VI-A): re-run the year with only one
/// category's governance enabled at a time. The claim under test — each
/// mitigation strategy moves *its own* sub-metric and leaves the others
/// flat — comes out as a 3×3 matrix of reductions with a strong diagonal.
pub fn run_ablation(seed: u64, days: usize) -> [Fig6Result; 3] {
    [
        run_world(fig6_fy2024_selective(seed, days, [true, false, false]), days),
        run_world(fig6_fy2024_selective(seed, days, [false, true, false]), days),
        run_world(fig6_fy2024_selective(seed, days, [false, false, true]), days),
    ]
}

fn run_world(world: SimWorld, days: usize) -> Fig6Result {
    let pipeline = pipeline_with_step(5);
    let (mut daily_u, mut daily_p, mut daily_c) = (Vec::new(), Vec::new(), Vec::new());
    for d in 0..days {
        let start = d as i64 * DAY;
        let rows = pipeline.vm_cdi_rows(&world, start, start + DAY).expect("pipeline runs");
        let agg = aggregate(&rows).expect("non-empty fleet");
        daily_u.push(agg.unavailability);
        daily_p.push(agg.performance);
        daily_c.push(agg.control_plane);
    }
    let window = (days / 13).max(3);
    let smooth_u = moving_average(&daily_u, window);
    let smooth_p = moving_average(&daily_p, window);
    let smooth_c = moving_average(&daily_c, window);
    // Compare the mean of the first and last eighths of the smoothed curve
    // (more robust than single endpoints).
    let reduction = |s: &[f64]| -> f64 {
        let k = (s.len() / 8).max(1);
        let head: f64 = s[..k].iter().sum::<f64>() / k as f64;
        let tail: f64 = s[s.len() - k..].iter().sum::<f64>() / k as f64;
        if head <= 0.0 {
            0.0
        } else {
            1.0 - tail / head
        }
    };
    let mk = |s: &[f64]| statskit::trend::mann_kendall(s).expect("series long enough");
    let (tu, tp, tc) = (mk(&daily_u), mk(&daily_p), mk(&daily_c));
    Fig6Result {
        reduction_u: reduction(&smooth_u),
        reduction_p: reduction(&smooth_p),
        reduction_c: reduction(&smooth_c),
        trend_p: [tu.p_value, tp.p_value, tc.p_value],
        sen_slope: [tu.sen_slope, tp.sen_slope, tc.sen_slope],
        daily_u,
        daily_p,
        daily_c,
        smooth_u,
        smooth_p,
        smooth_c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_track_paper_percentages() {
        // A compressed 120-day "year" keeps the test fast; the injected
        // governance trend is the same as the full year's.
        let r = run(2024, 120);
        assert_eq!(r.daily_p.len(), 120);
        // Head-vs-tail windows cover days 0-14 and 105-119, where the
        // linear rate decline has progressed ~94% of the way; expected
        // reductions are therefore slightly below the paper's full-year
        // numbers.
        assert!(
            (0.15..=0.60).contains(&r.reduction_u),
            "U reduction {} should be near 0.37",
            r.reduction_u
        );
        assert!(
            (0.55..=0.92).contains(&r.reduction_p),
            "P reduction {} should be near 0.74",
            r.reduction_p
        );
        assert!(
            (0.10..=0.55).contains(&r.reduction_c),
            "C reduction {} should be near 0.32",
            r.reduction_c
        );
        // The paper's ordering: P falls the most.
        assert!(r.reduction_p > r.reduction_u);
        assert!(r.reduction_p > r.reduction_c);
        // Mann-Kendall: the dense Performance curve is decisively declining
        // even in the compressed run; the sparser U/C daily curves are
        // noisy at 120 days (the full 365-day run is decisive for all
        // three), so the compressed test asserts their direction only.
        assert!(r.trend_p[1] < 0.01, "P trend p = {}", r.trend_p[1]);
        for (i, slope) in r.sen_slope.iter().enumerate() {
            assert!(*slope <= 0.0, "curve {i}: slope {slope}");
        }
    }

    #[test]
    fn ablation_attributes_reductions_to_own_strategy() {
        // With only one category's governance enabled, only that category's
        // sub-metric should fall materially; the others stay flat (within
        // noise). Use the Performance arm, whose dense signal is testable
        // even on a compressed 90-day year.
        let results = run_ablation(77, 90);
        let perf_only = &results[1];
        assert!(
            perf_only.reduction_p > 0.45,
            "own sub-metric falls: P reduction {}",
            perf_only.reduction_p
        );
        assert!(
            perf_only.reduction_u.abs() < 0.35,
            "ungoverned U stays flat-ish: {}",
            perf_only.reduction_u
        );
        assert!(
            perf_only.reduction_c.abs() < 0.35,
            "ungoverned C stays flat-ish: {}",
            perf_only.reduction_c
        );
        // The U-only arm must not move Performance.
        let u_only = &results[0];
        assert!(
            u_only.reduction_p.abs() < 0.2,
            "P flat under U-only governance: {}",
            u_only.reduction_p
        );
    }
}
