//! Fig. 2 — distribution of stability-related tickets.
//!
//! Paper: Jan 2023 – Jun 2024 ticket corpus classifies as 27% unavailability,
//! 44% performance, 29% control-plane — the motivation that downtime covers
//! barely a quarter of stability issues.

use cdi_core::event::Category;
use cloudbot::tickets::TicketClassifier;
use serde::Serialize;
use simfleet::scenario::fig2_ticket_world;
use simfleet::tickets::{generate_tickets, ReportPropensity};

/// Fig. 2 result.
#[derive(Debug, Serialize)]
pub struct Fig2Result {
    /// Total tickets classified.
    pub total: usize,
    /// Share of unavailability tickets (paper: 0.27).
    pub unavailability_share: f64,
    /// Share of performance tickets (paper: 0.44).
    pub performance_share: f64,
    /// Share of control-plane tickets (paper: 0.29).
    pub control_plane_share: f64,
    /// Classifier accuracy against the simulator's ground truth.
    pub classifier_accuracy: f64,
}

/// Run the experiment: `days` of simulated faults → tickets → classifier.
pub fn run(seed: u64, days: usize) -> Fig2Result {
    let world = fig2_ticket_world(seed, days);
    let tickets = generate_tickets(
        &world,
        0,
        days as i64 * simfleet::scenario::DAY,
        &ReportPropensity::default(),
    );
    let classifier = TicketClassifier::default();
    let dist = classifier.distribution(&tickets);
    let total: usize = dist.values().sum();
    let share = |c: Category| *dist.get(&c).unwrap_or(&0) as f64 / total.max(1) as f64;
    Fig2Result {
        total,
        unavailability_share: share(Category::Unavailability),
        performance_share: share(Category::Performance),
        control_plane_share: share(Category::ControlPlane),
        classifier_accuracy: classifier.accuracy(&tickets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_matches_paper_shape() {
        let r = run(20240101, 120);
        assert!(r.total > 2_000, "corpus large enough: {}", r.total);
        // The paper's 27/44/29 within a few points.
        assert!((r.unavailability_share - 0.27).abs() < 0.05, "U {}", r.unavailability_share);
        assert!((r.performance_share - 0.44).abs() < 0.06, "P {}", r.performance_share);
        assert!((r.control_plane_share - 0.29).abs() < 0.05, "C {}", r.control_plane_share);
        assert!(r.classifier_accuracy > 0.95, "acc {}", r.classifier_accuracy);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(7, 30);
        let b = run(7, 30);
        assert_eq!(a.total, b.total);
        assert_eq!(a.performance_share, b.performance_share);
    }
}
