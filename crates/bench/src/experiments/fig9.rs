//! Fig. 9 / Cases 6 & 7 — event-level CDI for potential-problem detection.
//!
//! (a) `vm_allocation_failed`: a scheduler data-corruption change spikes the
//!     event-level CDI on Day 14; the fix restores it on Day 15. The spike
//!     is caught by the K-Sigma detector.
//! (b) `inspect_cpu_power_tdp`: the power-collector zeroing bug *dips* the
//!     curve from Day 13 (bottoming out before the Day-18 fix) — the
//!     paper's lesson that dips deserve the same scrutiny as spikes.

use cdi_core::event::Target;
use serde::Serialize;
use simfleet::scenario::{fig9a_allocation, fig9b_power, DAY};
use statskit::anomaly::{Anomaly, AnomalyKind, KSigma};

use crate::pipeline_with_step;

/// Result of one event-level drill-down run.
#[derive(Debug, Serialize)]
pub struct Fig9Result {
    /// The drilled-down event name.
    pub event: String,
    /// Daily event-level CDI aggregated across the fleet (Formula 4).
    pub series: Vec<f64>,
    /// Days flagged by the K-Sigma detector, with direction.
    pub detections: Vec<(usize, String)>,
}

/// Aggregate the event-level CDI of `event` across all targets of one kind
/// for one day (Formula 4 with equal service times reduces to the mean over
/// the population).
fn fleet_event_cdi(
    pipeline: &cloudbot::pipeline::DailyPipeline,
    world: &simfleet::SimWorld,
    event: &str,
    nc_scope: bool,
    start: i64,
    end: i64,
) -> f64 {
    let events = pipeline.events(world, start, end);
    let rows = pipeline.event_level_rows(&events, start, end).expect("pipeline runs");
    let total: f64 = rows
        .iter()
        .filter(|(t, n, _)| {
            n == event
                && match t {
                    Target::Nc(_) => nc_scope,
                    Target::Vm(_) => !nc_scope,
                }
        })
        .map(|(_, _, q)| q)
        .sum();
    let population = if nc_scope {
        world.fleet.ncs().len()
    } else {
        world.fleet.vms().len()
    };
    total / population as f64
}

fn detect(series: &[f64], k: f64, window: usize) -> Vec<(usize, String)> {
    let detector = KSigma::new(k, window, 1e-9).expect("valid detector");
    detector
        .detect(series)
        .into_iter()
        .map(|Anomaly { index, kind, .. }| {
            (
                index,
                match kind {
                    AnomalyKind::Spike => "spike".to_string(),
                    AnomalyKind::Dip => "dip".to_string(),
                },
            )
        })
        .collect()
}

/// Fig. 9(a): the `vm_allocation_failed` spike (Case 6).
pub fn run_a(seed: u64, days: usize, spike_day: usize) -> Fig9Result {
    let world = fig9a_allocation(seed, days, spike_day);
    let pipeline = pipeline_with_step(5);
    let series: Vec<f64> = (0..days)
        .map(|d| {
            let start = d as i64 * DAY;
            fleet_event_cdi(&pipeline, &world, "vm_allocation_failed", false, start, start + DAY)
        })
        .collect();
    let detections = detect(&series, 5.0, 10);
    Fig9Result { event: "vm_allocation_failed".into(), series, detections }
}

/// Fig. 9(b): the `inspect_cpu_power_tdp` dip (Case 7).
pub fn run_b(seed: u64, days: usize, decline_day: usize, fix_day: usize) -> Fig9Result {
    let world = fig9b_power(seed, days, decline_day, fix_day);
    let pipeline = pipeline_with_step(5);
    let series: Vec<f64> = (0..days)
        .map(|d| {
            let start = d as i64 * DAY;
            fleet_event_cdi(&pipeline, &world, "inspect_cpu_power_tdp", true, start, start + DAY)
        })
        .collect();
    let detections = detect(&series, 4.0, 10);
    Fig9Result { event: "inspect_cpu_power_tdp".into(), series, detections }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_spike_detected_on_day_14() {
        let r = run_a(906, 22, 14);
        assert_eq!(r.series.len(), 22);
        // Day 14 towers over the background.
        let background: f64 = r.series[..13].iter().sum::<f64>() / 13.0;
        assert!(
            r.series[14] > 10.0 * background.max(1e-9),
            "spike {} vs background {background}",
            r.series[14]
        );
        // Day 15 is back to expected levels (Case 6's recovery).
        assert!(r.series[15] < 3.0 * background.max(1e-9), "recovered: {}", r.series[15]);
        // The detector flags the spike day.
        assert!(
            r.detections.iter().any(|(d, k)| *d == 14 && k == "spike"),
            "{:?}",
            r.detections
        );
    }

    #[test]
    fn power_dip_detected_and_recovers() {
        let r = run_b(907, 24, 13, 18);
        let background: f64 = r.series[..12].iter().sum::<f64>() / 12.0;
        assert!(background > 1e-6, "TDP inspections occur on healthy days");
        // Bottom of the dip: far below background (collector reads zero).
        assert!(
            r.series[17] < 0.2 * background,
            "dip {} vs background {background}",
            r.series[17]
        );
        // Recovery after the fix.
        assert!(r.series[20] > 0.6 * background, "recovered: {}", r.series[20]);
        // The detector flags a dip during the decline window.
        assert!(
            r.detections.iter().any(|(d, k)| (13..18).contains(d) && k == "dip"),
            "{:?}",
            r.detections
        );
    }
}
