//! The paper's worked examples as golden computations:
//!
//! - **Fig. 3 / Example 2** — event-period derivation with stateful
//!   deduplication and pairing.
//! - **Example 3** — the weight blend (critical level, 43rd ticket
//!   percentile, equal AHP priorities → w = 0.625).
//! - **Table IV / Example 4** — the three-VM CDI calculation
//!   (0.020 / 0.002 / 0.004 / 0.003).

use std::collections::HashMap;

use cdi_core::catalog::EventCatalog;
use cdi_core::event::{Category, EventSpan, RawEvent, Severity, Target};
use cdi_core::indicator::{aggregate, cdi, ServicePeriod, VmCdi};
use cdi_core::period::{derive_periods, UnmatchedPolicy};
use cdi_core::time::minutes;
use cdi_core::weight::{CustomerWeights, Priorities, WeightTable};
use serde::Serialize;

/// Fig. 3 golden output.
#[derive(Debug, Serialize)]
pub struct Fig3Result {
    /// Derived `slow_io` period `(start_min, end_min)`.
    pub slow_io_period: (i64, i64),
    /// Derived `ddos_blackhole` period `(start_min, end_min)`.
    pub ddos_period: (i64, i64),
    /// Number of raw markers that were discarded as dirty data.
    pub discarded_markers: usize,
}

/// Reproduce Fig. 3: `slow_io` at t1 with a 1-minute window, and the
/// `add(t2), add(t3), del(t4), del(t5)` marker sequence.
pub fn fig3() -> Fig3Result {
    let catalog = EventCatalog::paper_defaults();
    let (t1, t2, t3, t4, t5) = (minutes(5), minutes(10), minutes(12), minutes(20), minutes(22));
    let vm = Target::Vm(1);
    let mk = |name: &str, t| RawEvent::new(name, t, vm, minutes(60), Severity::Fatal);
    let events = vec![
        RawEvent::new("slow_io", t1, vm, minutes(10), Severity::Critical),
        mk("ddos_blackhole", t2),
        mk("ddos_blackhole", t3),
        mk("ddos_blackhole_del", t4),
        mk("ddos_blackhole_del", t5),
    ];
    let periods =
        derive_periods(&events, &catalog, minutes(60), UnmatchedPolicy::CloseAtServiceEnd)
            .expect("catalog covers all events");
    let slow = periods.iter().find(|p| p.name == "slow_io").expect("slow_io derived");
    let ddos = periods.iter().find(|p| p.name == "ddos_blackhole").expect("ddos derived");
    Fig3Result {
        slow_io_period: (slow.range.start / minutes(1), slow.range.end / minutes(1)),
        ddos_period: (ddos.range.start / minutes(1), ddos.range.end / minutes(1)),
        // 5 raw events → 2 derived periods; add(t3) and del(t5) discarded.
        discarded_markers: 5 - periods.len() - 1,
    }
}

/// Example 3 golden output.
#[derive(Debug, Serialize)]
pub struct Ex3Result {
    /// Expert weight `l₃` (paper: 0.75).
    pub expert_weight: f64,
    /// Customer weight `p₂` (paper: 0.5).
    pub customer_weight: f64,
    /// Final blended weight (paper: 0.625).
    pub final_weight: f64,
}

/// Reproduce Example 3 with a 100-event ticket corpus where the event of
/// interest sits at the 43rd percentile.
pub fn ex3() -> Ex3Result {
    let counts: HashMap<String, u64> =
        (0..100).map(|i| (format!("e{i}"), i as u64)).collect();
    let customer = CustomerWeights::from_ticket_counts(&counts, 4).expect("valid levels");
    let customer_weight = customer.get("e42").expect("e42 exists");
    let table = WeightTable::new(customer, Priorities::equal()).expect("valid priorities");
    Ex3Result {
        expert_weight: cdi_core::weight::expert_weight(Severity::Critical),
        customer_weight,
        final_weight: table.weight("e42", Severity::Critical),
    }
}

/// Table IV golden output.
#[derive(Debug, Serialize)]
pub struct Table4Result {
    /// CDI of VM 1 (paper: 0.020).
    pub vm1: f64,
    /// CDI of VM 2 (paper: 0.002).
    pub vm2: f64,
    /// CDI of VM 3 (paper: 0.004).
    pub vm3: f64,
    /// Aggregate over the three VMs (paper: 0.003).
    pub all: f64,
}

/// Reproduce the full Table IV calculation.
pub fn table4() -> Table4Result {
    let perf = |name: &str, s: i64, e: i64, w: f64| {
        EventSpan::new(name, Category::Performance, minutes(s), minutes(e), w)
    };
    // Table IV gives wall-clock times (10:08-10:12 within a one-hour
    // service window); here the window is [0, 60) minutes with the events
    // at minutes 8-12.
    let vm1_spans = vec![
        perf("packet_loss", 8, 10, 0.3),
        perf("packet_loss", 10, 12, 0.3),
    ];
    let vm2_spans = vec![perf("vcpu_high", 805, 810, 0.6)];
    let vm3_spans = vec![
        perf("slow_io", 488, 490, 0.5),
        perf("slow_io", 490, 492, 0.5),
        perf("vcpu_high", 490, 495, 0.6),
    ];
    let q1 = cdi(&vm1_spans, ServicePeriod::new(0, minutes(60)).unwrap()).unwrap();
    let q2 = cdi(&vm2_spans, ServicePeriod::new(0, minutes(1440)).unwrap()).unwrap();
    let q3 = cdi(&vm3_spans, ServicePeriod::new(0, minutes(1000)).unwrap()).unwrap();
    let vms = vec![
        VmCdi { vm: 1, service_time: minutes(60), unavailability: 0.0, performance: q1, control_plane: 0.0 },
        VmCdi { vm: 2, service_time: minutes(1440), unavailability: 0.0, performance: q2, control_plane: 0.0 },
        VmCdi { vm: 3, service_time: minutes(1000), unavailability: 0.0, performance: q3, control_plane: 0.0 },
    ];
    let all = aggregate(&vms).unwrap().performance;
    Table4Result { vm1: q1, vm2: q2, vm3: q3, all }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn fig3_periods_match_example_2() {
        // VM 1's spans have minute-aligned boundaries; the window is
        // shifted so that the Table IV numbers come out exactly. The
        // slow_io event at t1 traces back one window; the ddos event pairs
        // t2 with t4 and discards t3, t5.
        let r = fig3();
        assert_eq!(r.slow_io_period, (4, 5));
        assert_eq!(r.ddos_period, (10, 20));
        assert_eq!(r.discarded_markers, 2);
    }

    #[test]
    fn ex3_weight_is_0_625() {
        let r = ex3();
        close(r.expert_weight, 0.75, 1e-12);
        close(r.customer_weight, 0.5, 1e-12);
        close(r.final_weight, 0.625, 1e-12);
    }

    #[test]
    fn table4_matches_paper_numbers() {
        let r = table4();
        close(r.vm1, 0.020, 1e-12);
        // Paper rounds 0.002083 to 0.002.
        close(r.vm2, 3.0 / 1440.0, 1e-12);
        close(r.vm3, 0.004, 1e-12);
        // Paper rounds 0.00328 to 0.003.
        close(r.all, 8.2 / 2500.0, 1e-12);
    }
}
