//! Codec benchmarks for the `cdipack` binary format (`experiments
//! bench-codec`): snapshot size vs serde-JSON, batched binary ingest
//! throughput vs the PR-5 per-span baseline, restore (decode + rebuild)
//! latency for both dialects, and the cross-dialect / cross-shard-count
//! restore agreement checks.
//!
//! Two knobs matter for CI:
//!
//! - `quick` shrinks the synthetic stream for smoke runs;
//! - `sizes_only` zeroes every wall-clock field so the report bytes are a
//!   pure function of the deterministic encoders — the CI job runs it
//!   twice and byte-compares the two reports.
//!
//! Gates are recorded per-row in the report; timing gates are skipped (not
//! silently passed) in `sizes_only` mode.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use cdi_core::event::{Category, EventSpan, Target};
use cdi_serve::cdipack;
use cdi_serve::proto::{IngestItem, Request};
use cdi_serve::snapshot::ServiceSnapshot;
use cdi_serve::{serve, BackpressurePolicy, CdiService, ServeConfig};
use serde::Serialize;

const MIN: i64 = 60_000;
/// Distinct VM targets in the synthetic stream.
const TARGETS: u64 = 512;
/// Concurrent producer threads on the batched ingest side — matches the
/// PR-5 `serve_ingest_8p` workload shape so the throughputs compare.
const PRODUCERS: usize = 8;
/// Spans per `IngestBatch` frame on the batched path.
const BATCH: usize = 256;
/// PR-5 `serve_ingest_8p` at 8 shards from the committed BENCH_PR5.json
/// (per-span `Ingest`, 8 producers). Recorded for reference only: the
/// speedup gate compares against the *same workload re-measured in this
/// run*, because absolute eps is a property of the box, not the code.
const PR5_REFERENCE_EPS: f64 = 993_820.0;

/// One pass/fail acceptance gate.
#[derive(Debug, Clone, Serialize)]
pub struct CodecGate {
    /// Gate name.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Minimum acceptable value.
    pub min: f64,
    /// Whether the gate was evaluated (timing gates are skipped in
    /// `sizes_only` mode) and passed.
    pub pass: bool,
    /// Whether the gate was evaluated at all.
    pub evaluated: bool,
}

/// The full `bench-codec` report, serialized to `BENCH_PR9.json`.
#[derive(Debug, Clone, Serialize)]
pub struct CodecReport {
    /// Quick (CI smoke) mode.
    pub quick: bool,
    /// Deterministic sizes-only mode: wall-clock fields are zeroed.
    pub sizes_only: bool,
    /// Targets in the benchmark snapshot.
    pub snapshot_targets: usize,
    /// Spans accumulated into the benchmark snapshot.
    pub snapshot_spans: u64,
    /// serde-JSON snapshot size in bytes.
    pub snapshot_json_bytes: u64,
    /// Columnar `cdipack` snapshot size in bytes.
    pub snapshot_pack_bytes: u64,
    /// `json_bytes / pack_bytes` — the headline compression ratio.
    pub snapshot_size_ratio: f64,
    /// Spans streamed over the wire per timed ingest iteration.
    pub wire_spans: u64,
    /// Over-the-wire ingest throughput of the `serve_ingest_8p` workload
    /// in the pre-PR dialect: one JSON-lines `Ingest` request per span,
    /// pipelined, 8 client connections.
    pub wire_json_eps: f64,
    /// Same workload over the cdipack dialect: dictionary-compressed
    /// `IngestBatch` frames, 8 client connections.
    pub wire_pack_eps: f64,
    /// `wire_pack_eps / wire_json_eps` — what the binary wire buys the
    /// serving stack on its own ingest workload.
    pub ingest_speedup: f64,
    /// In-process `CdiService::ingest_batch` throughput on the same
    /// stream (no wire), for locating where the time goes.
    pub api_batch_eps: f64,
    /// In-process per-span `CdiService::ingest` throughput (no wire).
    pub api_per_span_eps: f64,
    /// The committed PR-5 `serve_ingest_8p` number, for cross-PR context
    /// (a property of the box it ran on, not gated against).
    pub ingest_pr5_reference_eps: f64,
    /// Best-of-N seconds to restore a service from the JSON snapshot.
    pub restore_json_secs: f64,
    /// Best-of-N seconds to restore a service from the pack snapshot.
    pub restore_pack_secs: f64,
    /// `restore_json_secs / restore_pack_secs`.
    pub restore_speedup: f64,
    /// Max |CDI delta| across targets and categories between restores at
    /// different shard counts (must be within 1e-9; in practice 0.0).
    pub cross_shard_max_abs_delta: f64,
    /// Whether the pack-path restore yields bit-identical target state to
    /// the JSON-path restore.
    pub dialects_bit_identical: bool,
    /// Acceptance gates.
    pub gates: Vec<CodecGate>,
    /// All evaluated gates passed.
    pub pass: bool,
}

/// The `i`-th span of the synthetic stream: targets cycle, time advances
/// one minute every full cycle, categories and fault names rotate (four
/// names, so the snapshot span dictionary is exercised).
fn nth_item(i: u64) -> IngestItem {
    let tick = (i / TARGETS) as i64;
    let cat = match i % 3 {
        0 => Category::Unavailability,
        1 => Category::Performance,
        _ => Category::ControlPlane,
    };
    let name = ["host_down", "nic_flapping", "slow_io", "live_migration"][(i % 4) as usize];
    let span = EventSpan::new(name, cat, tick * MIN, (tick + 1) * MIN, 0.5);
    IngestItem { target: Target::Vm(i % TARGETS), span }
}

fn service(shards: usize) -> CdiService {
    let cfg = ServeConfig {
        shards,
        queue_capacity: 256,
        policy: BackpressurePolicy::Block,
        period_start: 0,
        ..ServeConfig::default()
    };
    CdiService::new(cfg).unwrap_or_else(|e| unreachable!("static config is valid: {e}"))
}

/// A populated, flushed service: the full synthetic stream behind the
/// watermark. Deterministic, so its snapshot bytes are too.
fn populated(shards: usize, spans: u64) -> CdiService {
    let svc = service(shards);
    let mut batch = Vec::with_capacity(BATCH);
    let mut i = 0;
    while i < spans {
        batch.clear();
        while batch.len() < BATCH && i < spans {
            batch.push(nth_item(i));
            i += 1;
        }
        svc.ingest_batch(&batch);
    }
    let horizon = ((spans / TARGETS) as i64 + 1) * MIN;
    let _ = svc.advance_watermark(horizon);
    svc.flush();
    svc
}

/// One timed ingest run of the `serve_ingest_8p` workload: `spans`
/// deliveries from [`PRODUCERS`] concurrent producers, then a final
/// watermark + flush so every span is applied. `batched` selects the
/// path under test: [`BATCH`]-sized `IngestBatch` calls vs one `ingest`
/// per span — the same stream either way, so the eps compare directly.
fn ingest_once(shards: usize, spans: u64, batched: bool) -> f64 {
    let svc = Arc::new(service(shards));
    let t = Instant::now();
    let mut handles = Vec::with_capacity(PRODUCERS);
    let chunk = spans / PRODUCERS as u64;
    for p in 0..PRODUCERS as u64 {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            let hi = if p + 1 == PRODUCERS as u64 { spans } else { (p + 1) * chunk };
            if batched {
                let mut batch = Vec::with_capacity(BATCH);
                let mut i = p * chunk;
                while i < hi {
                    batch.clear();
                    while batch.len() < BATCH && i < hi {
                        batch.push(nth_item(i));
                        i += 1;
                    }
                    svc.ingest_batch(&batch);
                }
            } else {
                for i in (p * chunk)..hi {
                    let item = nth_item(i);
                    svc.ingest(item.target, item.span);
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let horizon = ((spans / TARGETS) as i64 + 1) * MIN;
    let _ = svc.advance_watermark(horizon);
    svc.flush();
    t.elapsed().as_secs_f64()
}

/// One timed over-the-wire run of the `serve_ingest_8p` workload in one
/// dialect: [`PRODUCERS`] client connections stream the synthetic spans
/// to a live loopback server — pipelined buffered writes, a reader
/// thread per client draining responses — then a final watermark + flush
/// through the service handle so every span is applied before the clock
/// stops. `pack` selects cdipack `IngestBatch` frames vs one JSON-lines
/// `Ingest` request per span (the pre-PR wire).
fn wire_ingest_once(spans: u64, pack: bool) -> f64 {
    let svc = Arc::new(service(8));
    let mut handle = serve(Arc::clone(&svc), None, "127.0.0.1:0", PRODUCERS)
        .expect("loopback serve");
    let addr = handle.addr();
    let t = Instant::now();
    let chunk = spans / PRODUCERS as u64;
    let mut clients = Vec::with_capacity(PRODUCERS);
    for p in 0..PRODUCERS as u64 {
        clients.push(std::thread::spawn(move || {
            let hi = if p + 1 == PRODUCERS as u64 { spans } else { (p + 1) * chunk };
            let lo = p * chunk;
            let stream = TcpStream::connect(addr).expect("loopback connect");
            let read_half = stream.try_clone().expect("clone stream");
            let mut writer = BufWriter::new(stream);
            if pack {
                let batches = {
                    let n = hi - lo;
                    n / BATCH as u64 + u64::from(!n.is_multiple_of(BATCH as u64))
                };
                let reader = std::thread::spawn(move || {
                    let mut read_half = read_half;
                    for _ in 0..batches {
                        let payload = cdipack::read_frame(&mut read_half)
                            .expect("framed reply")
                            .expect("server closed early");
                        let _ = cdipack::decode_response(&payload).expect("reply decodes");
                    }
                });
                writer.write_all(&cdipack::WIRE_MAGIC).expect("write magic");
                let mut batch = Vec::with_capacity(BATCH);
                let mut i = lo;
                while i < hi {
                    batch.clear();
                    while batch.len() < BATCH && i < hi {
                        batch.push(nth_item(i));
                        i += 1;
                    }
                    let req = Request::IngestBatch { items: std::mem::take(&mut batch) };
                    cdipack::write_frame(&mut writer, &cdipack::encode_request(&req))
                        .expect("write frame");
                    batch = match req {
                        Request::IngestBatch { items } => items,
                        _ => unreachable!("just built"),
                    };
                }
                writer.flush().expect("flush frames");
                reader.join().expect("reader thread");
            } else {
                let reader = std::thread::spawn(move || {
                    let mut lines = BufReader::new(read_half).lines();
                    for _ in lo..hi {
                        let line = lines
                            .next()
                            .expect("server closed early")
                            .expect("reply line");
                        assert!(!line.is_empty());
                    }
                });
                for i in lo..hi {
                    let item = nth_item(i);
                    let req = Request::Ingest { target: item.target, span: item.span };
                    let line = serde_json::to_string(&req).expect("request serializes");
                    writer.write_all(line.as_bytes()).expect("write line");
                    writer.write_all(b"\n").expect("write newline");
                }
                writer.flush().expect("flush lines");
                reader.join().expect("reader thread");
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    let horizon = ((spans / TARGETS) as i64 + 1) * MIN;
    let _ = svc.advance_watermark(horizon);
    svc.flush();
    let elapsed = t.elapsed().as_secs_f64();
    handle.stop();
    elapsed
}

fn best_of(iters: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f(); // doubles as warm-up
    for _ in 1..iters {
        best = best.min(f());
    }
    best
}

/// Max |CDI delta| across every target and category between two restored
/// services. Both must know exactly the same targets.
fn max_cdi_delta(a: &CdiService, b: &CdiService, snap: &ServiceSnapshot) -> f64 {
    let mut worst: f64 = 0.0;
    for t in &snap.targets {
        let pa = a
            .point(t.target)
            .ok()
            .flatten()
            .unwrap_or_else(|| panic!("restored service lost target {:?}", t.target));
        let pb = b
            .point(t.target)
            .ok()
            .flatten()
            .unwrap_or_else(|| panic!("restored service lost target {:?}", t.target));
        for cat in [Category::Unavailability, Category::Performance, Category::ControlPlane] {
            worst = worst.max((pa.get(cat) - pb.get(cat)).abs());
        }
    }
    worst
}

/// Run the codec benchmark suite. `iters` is the best-of-N count for the
/// timed probes; `quick` shrinks the stream; `sizes_only` skips every
/// wall-clock measurement so the report bytes are deterministic.
pub fn run(iters: usize, quick: bool, sizes_only: bool) -> CodecReport {
    let spans: u64 = if quick { 20_000 } else { 200_000 };

    // --- Snapshot size: serde-JSON vs columnar cdipack, same value. ---
    let svc = populated(8, spans);
    let snap = svc.snapshot();
    let json = snap.to_json().unwrap_or_else(|e| unreachable!("snapshot is serializable: {e}"));
    let pack = snap.to_pack();
    let size_ratio = json.len() as f64 / pack.len() as f64;

    // --- Restore agreement: both dialects, two shard widths. ---
    // The pack bytes must rebuild the exact state the JSON bytes do, and
    // restoring at a different shard count must not move any CDI.
    let decoded_json = ServiceSnapshot::from_json(&json)
        .unwrap_or_else(|e| unreachable!("own JSON snapshot parses: {e}"));
    let decoded_pack = ServiceSnapshot::from_pack(&pack)
        .unwrap_or_else(|e| unreachable!("own pack snapshot decodes: {e}"));
    let dialects_bit_identical = decoded_pack == decoded_json && decoded_pack == snap;
    let restored_8 = CdiService::restore(
        ServeConfig { shards: 8, period_start: 0, ..ServeConfig::default() },
        &decoded_pack,
    )
    .unwrap_or_else(|e| unreachable!("restore at 8 shards: {e}"));
    let restored_3 = CdiService::restore(
        ServeConfig { shards: 3, period_start: 0, ..ServeConfig::default() },
        &decoded_pack,
    )
    .unwrap_or_else(|e| unreachable!("restore at 3 shards: {e}"));
    let cross_shard_max_abs_delta = max_cdi_delta(&restored_8, &restored_3, &snap);

    // --- Timed probes (skipped entirely in sizes_only mode). ---
    let wire_spans: u64 = if quick { 8_000 } else { 80_000 };
    let (wire_json_eps, wire_pack_eps, batch_eps, per_span_eps, restore_json_secs, restore_pack_secs) =
        if sizes_only {
            (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        } else {
            let wire_json_secs = best_of(iters, || wire_ingest_once(wire_spans, false));
            let wire_pack_secs = best_of(iters, || wire_ingest_once(wire_spans, true));
            let batch_secs = best_of(iters, || ingest_once(8, spans, true));
            let per_span_secs = best_of(iters, || ingest_once(8, spans, false));
            // Restore = decode the durable bytes + rebuild the service;
            // the rebuild is shared, the decode is the dialect under test.
            let rj = best_of(iters.max(3), || {
                let t = Instant::now();
                let s = ServiceSnapshot::from_json(std::hint::black_box(&json))
                    .unwrap_or_else(|e| unreachable!("own JSON snapshot parses: {e}"));
                let svc = CdiService::restore(
                    ServeConfig { shards: 8, period_start: 0, ..ServeConfig::default() },
                    &s,
                )
                .unwrap_or_else(|e| unreachable!("restore: {e}"));
                std::hint::black_box(svc.target_count());
                t.elapsed().as_secs_f64()
            });
            let rp = best_of(iters.max(3), || {
                let t = Instant::now();
                let s = ServiceSnapshot::from_pack(std::hint::black_box(&pack))
                    .unwrap_or_else(|e| unreachable!("own pack snapshot decodes: {e}"));
                let svc = CdiService::restore(
                    ServeConfig { shards: 8, period_start: 0, ..ServeConfig::default() },
                    &s,
                )
                .unwrap_or_else(|e| unreachable!("restore: {e}"));
                std::hint::black_box(svc.target_count());
                t.elapsed().as_secs_f64()
            });
            (
                wire_spans as f64 / wire_json_secs,
                wire_spans as f64 / wire_pack_secs,
                spans as f64 / batch_secs,
                spans as f64 / per_span_secs,
                rj,
                rp,
            )
        };
    let ingest_speedup = if wire_json_eps > 0.0 { wire_pack_eps / wire_json_eps } else { 0.0 };
    let restore_speedup =
        if restore_pack_secs > 0.0 { restore_json_secs / restore_pack_secs } else { 0.0 };

    // --- Gates. ---
    let mut gates = vec![
        CodecGate {
            name: "snapshot_size_ratio_ge_5x".into(),
            value: size_ratio,
            min: 5.0,
            pass: size_ratio >= 5.0,
            evaluated: true,
        },
        CodecGate {
            name: "cross_shard_cdi_within_1e9".into(),
            // Gate direction is "min", so record the margin below the
            // tolerance (negative = violation).
            value: 1e-9 - cross_shard_max_abs_delta,
            min: 0.0,
            pass: cross_shard_max_abs_delta <= 1e-9,
            evaluated: true,
        },
        CodecGate {
            name: "dialect_restores_bit_identical".into(),
            value: if dialects_bit_identical { 1.0 } else { 0.0 },
            min: 1.0,
            pass: dialects_bit_identical,
            evaluated: true,
        },
    ];
    if !sizes_only {
        gates.push(CodecGate {
            name: "wire_ingest_speedup_ge_1p3x".into(),
            value: ingest_speedup,
            min: 1.3,
            pass: ingest_speedup >= 1.3,
            evaluated: true,
        });
        gates.push(CodecGate {
            name: "restore_pack_faster_than_json".into(),
            value: restore_speedup,
            min: 1.0,
            pass: restore_speedup >= 1.0,
            evaluated: true,
        });
    } else {
        for name in ["wire_ingest_speedup_ge_1p3x", "restore_pack_faster_than_json"] {
            gates.push(CodecGate {
                name: name.into(),
                value: 0.0,
                min: 0.0,
                pass: true,
                evaluated: false,
            });
        }
    }
    let pass = gates.iter().all(|g| g.pass);

    CodecReport {
        quick,
        sizes_only,
        snapshot_targets: snap.targets.len(),
        snapshot_spans: spans,
        snapshot_json_bytes: json.len() as u64,
        snapshot_pack_bytes: pack.len() as u64,
        snapshot_size_ratio: size_ratio,
        wire_spans,
        wire_json_eps,
        wire_pack_eps,
        ingest_speedup,
        api_batch_eps: batch_eps,
        api_per_span_eps: per_span_eps,
        ingest_pr5_reference_eps: PR5_REFERENCE_EPS,
        restore_json_secs,
        restore_pack_secs,
        restore_speedup,
        cross_shard_max_abs_delta,
        dialects_bit_identical,
        gates,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_only_quick_run_passes_and_is_deterministic() {
        let a = run(1, true, true);
        assert!(a.pass, "gates: {:?}", a.gates);
        assert!(a.snapshot_size_ratio >= 5.0, "ratio {}", a.snapshot_size_ratio);
        assert_eq!(a.cross_shard_max_abs_delta, 0.0);
        assert!(a.dialects_bit_identical);
        // Byte determinism is what the CI run-twice compare leans on.
        let b = run(1, true, true);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb);
    }
}
