//! The scenario-oriented detector evaluation (`experiments scenarios`).
//!
//! Builds the seeded scenario catalog, runs the three standard detector
//! adapters plus the outage-diag global diagnoser over every scenario,
//! checks the scores against the pinned regression floors, and packages
//! everything as the deterministic `BENCH_PR8.json` artifact CI
//! byte-compares across runs.

use cdi_core::error::Result;
use scenario_suite::{
    check_floors, default_detectors, pinned_floors, run_matrix, Detector, Floor, ScenarioConfig,
    ScoreMatrix,
};
use serde::Serialize;

/// Everything `experiments scenarios` writes to `BENCH_PR8.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// The scenario × detector score matrix.
    pub matrix: ScoreMatrix,
    /// The floors the matrix was checked against.
    pub floors: Vec<Floor>,
    /// Human-readable floor breaches (empty = gate passes).
    pub violations: Vec<String>,
    /// Deliberately ungated cells worth remembering (the measured gaps).
    pub notes: Vec<String>,
}

impl ScenarioReport {
    /// Whether the floor gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run the full evaluation: catalog → matrix → floor check. The matrix is
/// four detectors wide: the three per-target adapters plus outage-diag,
/// whose floors live with its crate ([`outage_diag::diag_floors`]) and
/// cover exactly the correlated scenarios the others cannot scope.
pub fn run(seed: u64, quick: bool) -> Result<ScenarioReport> {
    let cfg = if quick { ScenarioConfig::quick(seed) } else { ScenarioConfig::new(seed) };
    let mut detectors = default_detectors();
    detectors.push(Box::new(outage_diag::DiagDetector::default()) as Box<dyn Detector>);
    let matrix = run_matrix(&cfg, &detectors)?;
    let mut floors = pinned_floors(quick);
    floors.extend(outage_diag::diag_floors(quick));
    let violations = check_floors(&matrix, &floors);
    let notes = vec![
        "surge and ksigma remain ungated on bad-rollout-wave and power-domain-event: \
         they fire there under lenient overlap matching (and surge is silent on the \
         quick fleet), but neither carries topology — the detections are unscoped, so \
         only outage-diag's floors certify the blast radius on those cells."
            .to_string(),
    ];
    Ok(ScenarioReport { matrix, floors, violations, notes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_is_deterministic_and_passes_floors() {
        let a = run(20250, true).unwrap();
        let b = run(20250, true).unwrap();
        assert_eq!(a.matrix, b.matrix);
        assert!(a.passed(), "floor violations: {:?}", a.violations);
        assert_eq!(a.matrix.cells.len(), 10 * 4);
    }
}
