//! The scenario-oriented detector evaluation (`experiments scenarios`).
//!
//! Builds the seeded scenario catalog, runs the three standard detector
//! adapters over every scenario, checks the scores against the pinned
//! regression floors, and packages everything as the deterministic
//! `BENCH_PR8.json` artifact CI byte-compares across runs.

use cdi_core::error::Result;
use scenario_suite::{
    check_floors, default_detectors, pinned_floors, run_matrix, Floor, ScenarioConfig, ScoreMatrix,
};
use serde::Serialize;

/// Everything `experiments scenarios` writes to `BENCH_PR8.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// The scenario × detector score matrix.
    pub matrix: ScoreMatrix,
    /// The floors the matrix was checked against.
    pub floors: Vec<Floor>,
    /// Human-readable floor breaches (empty = gate passes).
    pub violations: Vec<String>,
}

impl ScenarioReport {
    /// Whether the floor gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run the full evaluation: catalog → matrix → floor check.
pub fn run(seed: u64, quick: bool) -> Result<ScenarioReport> {
    let cfg = if quick { ScenarioConfig::quick(seed) } else { ScenarioConfig::new(seed) };
    let matrix = run_matrix(&cfg, &default_detectors())?;
    let floors = pinned_floors(quick);
    let violations = check_floors(&matrix, &floors);
    Ok(ScenarioReport { matrix, floors, violations })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_is_deterministic_and_passes_floors() {
        let a = run(20250, true).unwrap();
        let b = run(20250, true).unwrap();
        assert_eq!(a.matrix, b.matrix);
        assert!(a.passed(), "floor violations: {:?}", a.violations);
        assert_eq!(a.matrix.cells.len(), 8 * 3);
    }
}
