//! The hypothesis-testing workflow of the paper's Fig. 10, used to compare
//! CDI sequences across candidate operation actions (Section VI-D).
//!
//! The workflow checks the distributional assumptions first, then routes to
//! the matching omnibus test, and — if the omnibus result is significant and
//! more than two groups are involved — to the matching post-hoc analysis:
//!
//! | normality | equal variances | omnibus            | post-hoc        |
//! |-----------|-----------------|--------------------|-----------------|
//! | yes       | yes             | one-way ANOVA      | Tukey HSD/Kramer|
//! | yes       | no              | Welch's ANOVA      | Games–Howell    |
//! | no        | —               | Kruskal–Wallis H   | Dunn            |

use crate::error::{Result, StatsError};
use crate::hypothesis::{
    dagostino_k2, kruskal_wallis, levene, one_way_anova, welch_anova, Center,
};
use crate::posthoc::{dunn, games_howell, tukey_hsd, Adjustment, PairwiseComparison};

/// Which omnibus test the workflow selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OmnibusMethod {
    /// Classical one-way ANOVA (normal, homoscedastic).
    OneWayAnova,
    /// Welch's ANOVA (normal, heteroscedastic).
    WelchAnova,
    /// Kruskal–Wallis H test (non-normal).
    KruskalWallis,
}

/// Which post-hoc procedure the workflow selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PosthocMethod {
    /// Tukey's HSD (equal group sizes).
    TukeyHsd,
    /// Tukey–Kramer (unequal group sizes; same statistic family as HSD).
    TukeyKramer,
    /// Games–Howell (heteroscedastic).
    GamesHowell,
    /// Dunn's rank-sum comparisons.
    Dunn,
}

/// Configuration for the workflow.
#[derive(Debug, Clone, Copy)]
pub struct AbTestConfig {
    /// Significance level for the omnibus decision (paper uses 0.05).
    pub alpha: f64,
    /// Significance level for the normality gate.
    pub normality_alpha: f64,
    /// Significance level for the variance-homogeneity gate.
    pub variance_alpha: f64,
    /// p-value adjustment for Dunn's comparisons.
    pub dunn_adjustment: Adjustment,
}

impl Default for AbTestConfig {
    fn default() -> Self {
        AbTestConfig {
            alpha: 0.05,
            normality_alpha: 0.05,
            variance_alpha: 0.05,
            dunn_adjustment: Adjustment::Holm,
        }
    }
}

/// Result of the assumption checks that drove the routing decision.
#[derive(Debug, Clone)]
pub struct AssumptionChecks {
    /// Per-group normality p-values (`None` where the group was too small to
    /// test; small groups are treated as non-normal, the conservative route).
    pub normality_p: Vec<Option<f64>>,
    /// Whether every group passed the normality gate.
    pub all_normal: bool,
    /// Levene p-value (only computed when data is normal).
    pub variance_p: Option<f64>,
    /// Whether the variance-homogeneity gate passed.
    pub variances_equal: bool,
}

/// Full report of one Fig. 10 workflow run.
#[derive(Debug, Clone)]
pub struct AbTestReport {
    /// The omnibus test that was selected.
    pub omnibus: OmnibusMethod,
    /// Omnibus test statistic.
    pub statistic: f64,
    /// Omnibus p-value.
    pub p_value: f64,
    /// Whether the omnibus test rejected at `config.alpha`.
    pub significant: bool,
    /// Post-hoc results (present only when significant and k > 2).
    pub posthoc: Option<(PosthocMethod, Vec<PairwiseComparison>)>,
    /// Assumption checks that determined the routing.
    pub assumptions: AssumptionChecks,
}

impl AbTestReport {
    /// Indices of group pairs that differ significantly at `alpha`
    /// (empty when no post-hoc analysis ran).
    pub fn significant_pairs(&self, alpha: f64) -> Vec<(usize, usize)> {
        self.posthoc
            .as_ref()
            .map(|(_, cmp)| {
                cmp.iter()
                    .filter(|c| c.is_significant(alpha))
                    .map(|c| (c.group_a, c.group_b))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Run the full Fig. 10 workflow over the groups.
///
/// Each group is one candidate operation action's sequence of per-VM CDI
/// values. Groups must be non-empty; at least two groups are required.
pub fn run_ab_test(groups: &[&[f64]], config: &AbTestConfig) -> Result<AbTestReport> {
    if groups.len() < 2 {
        return Err(StatsError::degenerate("A/B test needs at least 2 groups"));
    }
    if !(0.0..1.0).contains(&config.alpha) || config.alpha <= 0.0 {
        return Err(StatsError::invalid(format!("alpha must be in (0,1), got {}", config.alpha)));
    }

    // Gate 1: normality of every group. Groups too small for the K² test
    // take the conservative nonparametric route.
    let mut normality_p = Vec::with_capacity(groups.len());
    let mut all_normal = true;
    for g in groups.iter() {
        match dagostino_k2(g) {
            Ok(r) => {
                if r.rejects_normality(config.normality_alpha) {
                    all_normal = false;
                }
                normality_p.push(Some(r.p_value));
            }
            Err(_) => {
                all_normal = false;
                normality_p.push(None);
            }
        }
    }

    if !all_normal {
        let kw = kruskal_wallis(groups)?;
        let significant = kw.is_significant(config.alpha);
        let posthoc = if significant && groups.len() > 2 {
            Some((PosthocMethod::Dunn, dunn(groups, config.dunn_adjustment)?))
        } else {
            None
        };
        return Ok(AbTestReport {
            omnibus: OmnibusMethod::KruskalWallis,
            statistic: kw.statistic,
            p_value: kw.p_value,
            significant,
            posthoc,
            assumptions: AssumptionChecks {
                normality_p,
                all_normal,
                variance_p: None,
                variances_equal: false,
            },
        });
    }

    // Gate 2: variance homogeneity (Brown–Forsythe).
    let lev = levene(groups, Center::Median)?;
    let variances_equal = !lev.rejects_homogeneity(config.variance_alpha);

    let (omnibus, statistic, p_value) = if variances_equal {
        let a = one_way_anova(groups)?;
        (OmnibusMethod::OneWayAnova, a.statistic, a.p_value)
    } else {
        let a = welch_anova(groups)?;
        (OmnibusMethod::WelchAnova, a.statistic, a.p_value)
    };
    let significant = p_value < config.alpha;

    let posthoc = if significant && groups.len() > 2 {
        if variances_equal {
            let equal_sizes = groups.windows(2).all(|w| w[0].len() == w[1].len());
            let method = if equal_sizes {
                PosthocMethod::TukeyHsd
            } else {
                PosthocMethod::TukeyKramer
            };
            Some((method, tukey_hsd(groups)?))
        } else {
            Some((PosthocMethod::GamesHowell, games_howell(groups)?))
        }
    } else {
        None
    };

    Ok(AbTestReport {
        omnibus,
        statistic,
        p_value,
        significant,
        posthoc,
        assumptions: AssumptionChecks {
            normality_p,
            all_normal,
            variance_p: Some(lev.p_value),
            variances_equal,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal;

    /// Deterministic "normal-looking" sample: normal quantiles at plotting
    /// positions, shifted and scaled.
    fn normal_sample(n: usize, mu: f64, sigma: f64) -> Vec<f64> {
        let std = Normal::standard();
        (1..=n)
            .map(|i| mu + sigma * std.quantile(i as f64 / (n + 1) as f64).unwrap())
            .collect()
    }

    #[test]
    fn routes_to_classical_anova_for_clean_normal_data() {
        let a = normal_sample(30, 0.0, 1.0);
        let b = normal_sample(30, 0.2, 1.0);
        let c = normal_sample(30, 5.0, 1.0);
        let report = run_ab_test(&[&a, &b, &c], &AbTestConfig::default()).unwrap();
        assert_eq!(report.omnibus, OmnibusMethod::OneWayAnova);
        assert!(report.significant);
        let (method, _) = report.posthoc.as_ref().unwrap();
        assert_eq!(*method, PosthocMethod::TukeyHsd);
        // a-b similar, c far away: exactly the pairs (0,2) and (1,2).
        assert_eq!(report.significant_pairs(0.05), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn routes_to_tukey_kramer_for_unequal_sizes() {
        let a = normal_sample(30, 0.0, 1.0);
        let b = normal_sample(25, 0.1, 1.0);
        let c = normal_sample(20, 6.0, 1.0);
        let report = run_ab_test(&[&a, &b, &c], &AbTestConfig::default()).unwrap();
        assert_eq!(report.omnibus, OmnibusMethod::OneWayAnova);
        let (method, _) = report.posthoc.as_ref().unwrap();
        assert_eq!(*method, PosthocMethod::TukeyKramer);
    }

    #[test]
    fn routes_to_welch_and_games_howell_for_unequal_variances() {
        let a = normal_sample(30, 0.0, 0.2);
        let b = normal_sample(30, 0.1, 0.2);
        let c = normal_sample(30, 4.0, 5.0);
        let report = run_ab_test(&[&a, &b, &c], &AbTestConfig::default()).unwrap();
        assert_eq!(report.omnibus, OmnibusMethod::WelchAnova);
        assert!(!report.assumptions.variances_equal);
        if report.significant {
            let (method, _) = report.posthoc.as_ref().unwrap();
            assert_eq!(*method, PosthocMethod::GamesHowell);
        }
    }

    #[test]
    fn routes_to_kruskal_for_non_normal_data() {
        // Heavily skewed data (squared quantiles) in every group.
        let skew = |n: usize, shift: f64| -> Vec<f64> {
            normal_sample(n, 0.0, 1.0).iter().map(|x| x * x * x * x + shift).collect()
        };
        let a = skew(25, 0.0);
        let b = skew(25, 0.1);
        let c = skew(25, 50.0);
        let report = run_ab_test(&[&a, &b, &c], &AbTestConfig::default()).unwrap();
        assert_eq!(report.omnibus, OmnibusMethod::KruskalWallis);
        assert!(report.significant);
        let (method, _) = report.posthoc.as_ref().unwrap();
        assert_eq!(*method, PosthocMethod::Dunn);
    }

    #[test]
    fn small_groups_take_conservative_route() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.5, 3.5];
        let report = run_ab_test(&[&a, &b], &AbTestConfig::default()).unwrap();
        assert_eq!(report.omnibus, OmnibusMethod::KruskalWallis);
        assert!(report.assumptions.normality_p.iter().all(Option::is_none));
    }

    #[test]
    fn no_posthoc_for_two_groups_or_insignificant_omnibus() {
        let a = normal_sample(30, 0.0, 1.0);
        let b = normal_sample(30, 8.0, 1.0);
        let two = run_ab_test(&[&a, &b], &AbTestConfig::default()).unwrap();
        assert!(two.significant);
        assert!(two.posthoc.is_none(), "k = 2 needs no post-hoc");

        let c = normal_sample(30, 0.05, 1.0);
        let null = run_ab_test(&[&a, &c], &AbTestConfig::default()).unwrap();
        assert!(!null.significant);
        assert!(null.posthoc.is_none());
        assert!(null.significant_pairs(0.05).is_empty());
    }

    #[test]
    fn rejects_bad_config_and_layout() {
        let a = [1.0, 2.0];
        assert!(run_ab_test(&[&a], &AbTestConfig::default()).is_err());
        let bad = AbTestConfig { alpha: 0.0, ..AbTestConfig::default() };
        let b = [3.0, 4.0];
        assert!(run_ab_test(&[&a, &b], &bad).is_err());
    }
}
