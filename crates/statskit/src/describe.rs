//! Descriptive statistics: moments, quantiles, and tie-aware ranks.
//!
//! These helpers are deliberately small and allocation-light; they are called
//! in the inner loops of the anomaly detectors and of every hypothesis test.

use crate::error::{Result, StatsError};

/// Arithmetic mean. Returns an error on empty input.
pub fn mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::degenerate("mean of empty slice"));
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased (n − 1) sample variance. Requires at least two observations.
pub fn variance(data: &[f64]) -> Result<f64> {
    if data.len() < 2 {
        return Err(StatsError::degenerate("variance requires >= 2 observations"));
    }
    let m = mean(data)?;
    let ss: f64 = data.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (data.len() - 1) as f64)
}

/// Unbiased sample standard deviation.
pub fn std_dev(data: &[f64]) -> Result<f64> {
    Ok(variance(data)?.sqrt())
}

/// Biased (population, divide-by-n) central moment of the given order.
pub fn central_moment(data: &[f64], order: u32) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::degenerate("moment of empty slice"));
    }
    let m = mean(data)?;
    Ok(data.iter().map(|x| (x - m).powi(order as i32)).sum::<f64>() / data.len() as f64)
}

/// Sample skewness `g1 = m3 / m2^(3/2)` (biased, moment-based), as used by the
/// D'Agostino normality test.
pub fn skewness(data: &[f64]) -> Result<f64> {
    let m2 = central_moment(data, 2)?;
    if m2 <= 0.0 {
        return Err(StatsError::degenerate("skewness of constant data"));
    }
    Ok(central_moment(data, 3)? / m2.powf(1.5))
}

/// Sample kurtosis `g2 = m4 / m2²` (biased, moment-based, *not* excess).
pub fn kurtosis(data: &[f64]) -> Result<f64> {
    let m2 = central_moment(data, 2)?;
    if m2 <= 0.0 {
        return Err(StatsError::degenerate("kurtosis of constant data"));
    }
    Ok(central_moment(data, 4)? / (m2 * m2))
}

/// Median of the data (linear-interpolated between the two middle order
/// statistics for even lengths).
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// Type-7 (linear interpolation, R default) sample quantile for `q ∈ [0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::degenerate("quantile of empty slice"));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::invalid(format!("quantile level must be in [0,1], got {q}")));
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
    }
}

/// Midranks (average ranks for ties), 1-based, in the original data order.
///
/// Used by Kruskal–Wallis and Dunn's test. Runs in `O(n log n)`.
pub fn ranks(data: &[f64]) -> Vec<f64> {
    let mut indexed: Vec<(usize, f64)> = data.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| a.1.total_cmp(&b.1));
    let mut out = vec![0.0; data.len()];
    let mut i = 0;
    while i < indexed.len() {
        let mut j = i;
        while j + 1 < indexed.len() && indexed[j + 1].1 == indexed[i].1 {
            j += 1;
        }
        // Ranks i+1 ..= j+1 share the same value; assign their average.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for item in &indexed[i..=j] {
            out[item.0] = avg;
        }
        i = j + 1;
    }
    out
}

/// Sizes of tie groups among the data (groups of size 1 are omitted).
///
/// Feeds the tie-correction terms of the rank-based tests.
pub fn tie_group_sizes(data: &[f64]) -> Vec<usize> {
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
            j += 1;
        }
        if j > i {
            out.push(j - i + 1);
        }
        i = j + 1;
    }
    out
}

/// Simple moving average with the given window, aligned to the window end.
///
/// The first `window - 1` outputs average over the (shorter) available
/// prefix, so the result has the same length as the input. Used to smooth
/// the annual CDI curves (Fig. 6 of the paper).
pub fn moving_average(data: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(data.len());
    let mut sum = 0.0;
    for (i, &x) in data.iter().enumerate() {
        sum += x;
        if i >= window {
            sum -= data[i - window];
        }
        let n = (i + 1).min(window);
        out.push(sum / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn mean_and_variance_basic() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        close(mean(&data).unwrap(), 5.0, 1e-12);
        // Sum of squared deviations is 32; unbiased variance 32/7.
        close(variance(&data).unwrap(), 32.0 / 7.0, 1e-12);
        close(std_dev(&data).unwrap(), (32.0_f64 / 7.0).sqrt(), 1e-12);
    }

    #[test]
    fn empty_and_short_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[1.0]).is_err());
        assert!(median(&[]).is_err());
        assert!(skewness(&[3.0, 3.0, 3.0]).is_err());
    }

    #[test]
    fn skewness_symmetric_data_is_zero() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        close(skewness(&data).unwrap(), 0.0, 1e-12);
    }

    #[test]
    fn kurtosis_of_uniform_five_points() {
        // For {1..5}: m2 = 2, m4 = 6.8, kurtosis = 1.7.
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        close(kurtosis(&data).unwrap(), 1.7, 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        close(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0, 1e-12);
        close(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5, 1e-12);
    }

    #[test]
    fn quantile_type7_interpolation() {
        let data = [10.0, 20.0, 30.0, 40.0];
        close(quantile(&data, 0.0).unwrap(), 10.0, 1e-12);
        close(quantile(&data, 1.0).unwrap(), 40.0, 1e-12);
        // h = 0.25 * 3 = 0.75 → 10 + 0.75 * 10 = 17.5 (matches R quantile type 7).
        close(quantile(&data, 0.25).unwrap(), 17.5, 1e-12);
        assert!(quantile(&data, 1.5).is_err());
    }

    #[test]
    fn ranks_without_ties() {
        let data = [30.0, 10.0, 20.0];
        assert_eq!(ranks(&data), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ranks_with_ties_use_midranks() {
        let data = [1.0, 2.0, 2.0, 3.0];
        assert_eq!(ranks(&data), vec![1.0, 2.5, 2.5, 4.0]);
        let data = [5.0, 5.0, 5.0];
        assert_eq!(ranks(&data), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn tie_groups_detected() {
        assert_eq!(tie_group_sizes(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0]), vec![2, 3]);
        assert!(tie_group_sizes(&[1.0, 2.0, 3.0]).is_empty());
    }

    #[test]
    fn moving_average_smooths_and_keeps_length() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ma = moving_average(&data, 3);
        assert_eq!(ma.len(), data.len());
        close(ma[0], 1.0, 1e-12);
        close(ma[1], 1.5, 1e-12);
        close(ma[2], 2.0, 1e-12);
        close(ma[4], 4.0, 1e-12);
    }
}
