//! # statskit — statistics toolkit for the CDI reproduction
//!
//! A self-contained statistics library backing the Comprehensive Damage
//! Indicator (CDI) pipeline from *"Stability is Not Downtime"* (ICDE 2025):
//!
//! - [`special`] — log-gamma, error function, regularized incomplete
//!   gamma/beta: the numeric bedrock for every distribution here.
//! - [`dist`] — Normal, Student-t, chi-squared, F, studentized range, and
//!   generalized Pareto distributions with CDFs and quantiles.
//! - [`describe`] — descriptive statistics (moments, quantiles, ranks).
//! - [`hypothesis`] — the omnibus tests of the paper's Fig. 10 workflow:
//!   D'Agostino–Pearson K² normality, Levene/Brown–Forsythe variance
//!   homogeneity, one-way ANOVA, Welch's ANOVA, Kruskal–Wallis H.
//! - [`posthoc`] — Tukey HSD / Tukey–Kramer, Games–Howell, and Dunn's test.
//! - [`abtest`] — the full Fig. 10 decision workflow used for operation-action
//!   optimization (Section VI-D of the paper).
//! - [`anomaly`] — K-Sigma and SPOT/EVT detectors used both for event
//!   extraction (Section II-C) and CDI-curve surveillance (Section VI-C).
//! - [`stl`] — online seasonal-trend decomposition (BacktrackSTL-inspired).
//! - [`trend`] — Mann–Kendall monotone-trend test and Sen's slope for the
//!   slow drifts that never trip a threshold detector (Case 4's yearly
//!   curves).
//! - [`rootcause`] — multi-dimensional root-cause localization used to drill
//!   into CDI anomalies (Case 6).
//! - [`ahp`] — the Analytic Hierarchy Process used to blend expert- and
//!   customer-perceived event weights (Section IV-C).
//!
//! All numerics are pure Rust with no external math dependencies; accuracy
//! targets (absolute CDF error ≲ 1e-8 for closed-form distributions, ≲ 1e-6
//! for the studentized range) are asserted in the test suite against
//! reference values from R and scipy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abtest;
pub mod ahp;
pub mod anomaly;
pub mod describe;
pub mod dist;
pub mod error;
pub mod hypothesis;
pub mod posthoc;
pub mod rootcause;
pub mod special;
pub mod stl;
pub mod trend;

pub use error::{Result, StatsError};
