//! Error types shared across the statistics toolkit.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, StatsError>;

/// Errors produced by statistical routines.
///
/// All routines validate their inputs up front and return a structured error
/// rather than silently producing NaN, so callers in the CDI pipeline can
/// distinguish "the data is degenerate" from "the math diverged".
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// An argument was outside its legal domain (e.g. a negative degrees of
    /// freedom, a probability outside `[0, 1]`).
    InvalidArgument(String),
    /// The input data cannot support the requested computation (e.g. fewer
    /// than two groups for an ANOVA, zero variance where a ratio is needed).
    Degenerate(String),
    /// An iterative routine failed to converge within its iteration budget.
    NotConverged(String),
}

impl StatsError {
    /// Shorthand constructor for [`StatsError::InvalidArgument`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        StatsError::InvalidArgument(msg.into())
    }

    /// Shorthand constructor for [`StatsError::Degenerate`].
    pub fn degenerate(msg: impl Into<String>) -> Self {
        StatsError::Degenerate(msg.into())
    }
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            StatsError::Degenerate(msg) => write!(f, "degenerate input: {msg}"),
            StatsError::NotConverged(msg) => write!(f, "failed to converge: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        assert_eq!(
            StatsError::invalid("df must be positive").to_string(),
            "invalid argument: df must be positive"
        );
        assert_eq!(
            StatsError::degenerate("empty group").to_string(),
            "degenerate input: empty group"
        );
        assert_eq!(
            StatsError::NotConverged("gpd fit".into()).to_string(),
            "failed to converge: gpd fit"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&StatsError::invalid("x"));
    }
}
