//! One-way ANOVA (classical F test) and Welch's heteroscedastic ANOVA.

use crate::describe::{mean, variance};
use crate::dist::FisherF;
use crate::error::{Result, StatsError};

use super::validate_groups;

/// Outcome of an omnibus ANOVA-family test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnovaResult {
    /// The F (or F*) statistic.
    pub statistic: f64,
    /// p-value against `F(df_between, df_within)`.
    pub p_value: f64,
    /// Numerator degrees of freedom.
    pub df_between: f64,
    /// Denominator degrees of freedom (fractional for Welch).
    pub df_within: f64,
    /// Pooled within-group mean square (classical ANOVA only; `None` for
    /// Welch, which never pools variances). Consumed by Tukey's HSD.
    pub mean_square_error: Option<f64>,
}

impl AnovaResult {
    /// Whether group means differ significantly at level `alpha`.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Classical one-way ANOVA. Assumes normality and homogeneous variances.
pub fn one_way_anova(groups: &[&[f64]]) -> Result<AnovaResult> {
    validate_groups(groups, 2, 2)?;
    let k = groups.len();
    let n_total: usize = groups.iter().map(|g| g.len()).sum();
    let grand = groups.iter().flat_map(|g| g.iter()).sum::<f64>() / n_total as f64;

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let m = mean(g)?;
        ss_between += g.len() as f64 * (m - grand) * (m - grand);
        ss_within += g.iter().map(|x| (x - m) * (x - m)).sum::<f64>();
    }

    let df_between = (k - 1) as f64;
    let df_within = (n_total - k) as f64;
    let mse = ss_within / df_within;
    if mse <= 0.0 {
        if ss_between <= 0.0 {
            // All observations identical everywhere: no evidence of anything.
            return Ok(AnovaResult {
                statistic: 0.0,
                p_value: 1.0,
                df_between,
                df_within,
                mean_square_error: Some(0.0),
            });
        }
        return Err(StatsError::degenerate(
            "zero within-group variance with distinct group means",
        ));
    }
    let statistic = (ss_between / df_between) / mse;
    let p_value = FisherF::new(df_between, df_within)?.sf(statistic)?;
    Ok(AnovaResult {
        statistic,
        p_value,
        df_between,
        df_within,
        mean_square_error: Some(mse),
    })
}

/// Welch's heteroscedastic one-way ANOVA (the F* test). Assumes normality but
/// not equal variances.
pub fn welch_anova(groups: &[&[f64]]) -> Result<AnovaResult> {
    validate_groups(groups, 2, 2)?;
    let k = groups.len() as f64;

    let mut weights = Vec::with_capacity(groups.len());
    let mut means = Vec::with_capacity(groups.len());
    for g in groups {
        let v = variance(g)?;
        if v <= 0.0 {
            return Err(StatsError::degenerate(
                "Welch ANOVA requires positive variance in every group",
            ));
        }
        weights.push(g.len() as f64 / v);
        means.push(mean(g)?);
    }
    let w_sum: f64 = weights.iter().sum();
    let weighted_mean: f64 =
        weights.iter().zip(&means).map(|(w, m)| w * m).sum::<f64>() / w_sum;

    let numerator: f64 = weights
        .iter()
        .zip(&means)
        .map(|(w, m)| w * (m - weighted_mean) * (m - weighted_mean))
        .sum::<f64>()
        / (k - 1.0);

    // The lambda term Σ (1 − w_i/W)² / (n_i − 1) drives both the denominator
    // correction and the Welch–Satterthwaite df.
    let lambda: f64 = weights
        .iter()
        .zip(groups)
        .map(|(w, g)| {
            let frac = 1.0 - w / w_sum;
            frac * frac / (g.len() as f64 - 1.0)
        })
        .sum();

    let denominator = 1.0 + 2.0 * (k - 2.0) / (k * k - 1.0) * lambda;
    let statistic = numerator / denominator;
    let df_between = k - 1.0;
    let df_within = (k * k - 1.0) / (3.0 * lambda);
    let p_value = FisherF::new(df_between, df_within)?.sf(statistic)?;
    Ok(AnovaResult { statistic, p_value, df_between, df_within, mean_square_error: None })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn anova_matches_independent_reference() {
        // F computed with an independent pure-Python implementation; p
        // checked against Simpson integration of the F(3, 16) density.
        let a = [6.9, 5.4, 5.8, 4.6, 4.0];
        let b = [8.3, 6.8, 7.8, 9.2, 6.5];
        let c = [8.0, 10.5, 8.1, 6.9, 9.3];
        let d = [5.8, 3.8, 6.1, 5.6, 6.2];
        let r = one_way_anova(&[&a, &b, &c, &d]).unwrap();
        close(r.statistic, 9.723_839_939_883_52, 1e-9);
        close(r.p_value, 6.844_538_653_7e-4, 1e-9);
        assert!(r.is_significant(0.05));
        close(r.df_between, 3.0, 1e-12);
        close(r.df_within, 16.0, 1e-12);
        assert!(r.mean_square_error.unwrap() > 0.0);
    }

    #[test]
    fn anova_identical_groups_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = one_way_anova(&[&a, &a, &a]).unwrap();
        close(r.statistic, 0.0, 1e-12);
        close(r.p_value, 1.0, 1e-12);
    }

    #[test]
    fn anova_constant_everywhere_is_null() {
        let a = [5.0, 5.0, 5.0];
        let r = one_way_anova(&[&a, &a]).unwrap();
        close(r.p_value, 1.0, 1e-12);
    }

    #[test]
    fn anova_constant_within_distinct_between_is_degenerate() {
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 2.0, 2.0];
        assert!(one_way_anova(&[&a, &b]).is_err());
    }

    #[test]
    fn welch_matches_independent_reference() {
        // F* and the Welch-Satterthwaite df computed with an independent
        // pure-Python implementation; p checked against Simpson integration
        // of the F(2, 7.9302) density.
        let a = [6.9, 5.4, 5.8, 4.6, 4.0];
        let b = [8.3, 6.8, 7.8, 9.2, 6.5];
        let c = [8.0, 10.5, 8.1, 6.9, 9.3];
        let r = welch_anova(&[&a, &b, &c]).unwrap();
        close(r.statistic, 9.023_741_344_048_92, 1e-9);
        close(r.df_within, 7.930_235_384_361_87, 1e-9);
        close(r.p_value, 9.051_398_579_12e-3, 1e-9);
        assert!(r.mean_square_error.is_none());
    }

    #[test]
    fn welch_handles_very_unequal_variances() {
        let tight = [10.0, 10.01, 9.99, 10.005, 9.995];
        let wide = [12.0, 18.0, 6.0, 15.0, 9.0];
        // Means differ (10 vs 12) but the wide group is noisy: Welch should
        // run fine where classical ANOVA would overstate significance.
        let r = welch_anova(&[&tight, &wide]).unwrap();
        assert!(r.p_value > 0.0 && r.p_value < 1.0);
        assert!(r.df_within < 5.0, "df should collapse toward the noisy group");
    }

    #[test]
    fn welch_rejects_zero_variance_group() {
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 3.0, 4.0];
        assert!(welch_anova(&[&a, &b]).is_err());
    }

    #[test]
    fn both_reject_single_group() {
        let a = [1.0, 2.0];
        assert!(one_way_anova(&[&a]).is_err());
        assert!(welch_anova(&[&a]).is_err());
    }
}
