//! D'Agostino–Pearson K² omnibus normality test.
//!
//! Combines a transformed-skewness statistic (D'Agostino 1970) with a
//! transformed-kurtosis statistic (Anscombe & Glynn 1983); under the null of
//! normality `K² = Z₁² + Z₂²` is approximately χ²(2). This is the normality
//! gate of the paper's hypothesis-test workflow (Fig. 10) and matches
//! `scipy.stats.normaltest`.

use crate::describe::{kurtosis, skewness};
use crate::dist::ChiSquared;
use crate::error::{Result, StatsError};

/// Outcome of the D'Agostino–Pearson K² test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalityResult {
    /// The K² omnibus statistic.
    pub statistic: f64,
    /// Two-sided p-value against χ²(2).
    pub p_value: f64,
    /// The transformed-skewness component Z₁.
    pub z_skew: f64,
    /// The transformed-kurtosis component Z₂.
    pub z_kurt: f64,
}

impl NormalityResult {
    /// Whether normality is rejected at significance level `alpha`.
    pub fn rejects_normality(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run the D'Agostino–Pearson K² normality test. Requires `n >= 8`.
pub fn dagostino_k2(data: &[f64]) -> Result<NormalityResult> {
    let n = data.len();
    if n < 8 {
        return Err(StatsError::degenerate(format!(
            "D'Agostino-Pearson requires n >= 8, got {n}"
        )));
    }
    let z_skew = skew_z(data)?;
    let z_kurt = kurt_z(data)?;
    let k2 = z_skew * z_skew + z_kurt * z_kurt;
    let p_value = ChiSquared::new(2.0)?.sf(k2)?;
    Ok(NormalityResult { statistic: k2, p_value, z_skew, z_kurt })
}

/// D'Agostino's transformed-skewness Z statistic.
fn skew_z(data: &[f64]) -> Result<f64> {
    let n = data.len() as f64;
    let b1 = skewness(data)?;
    let y = b1 * ((n + 1.0) * (n + 3.0) / (6.0 * (n - 2.0))).sqrt();
    let beta2 = 3.0 * (n * n + 27.0 * n - 70.0) * (n + 1.0) * (n + 3.0)
        / ((n - 2.0) * (n + 5.0) * (n + 7.0) * (n + 9.0));
    let w2 = -1.0 + (2.0 * (beta2 - 1.0)).sqrt();
    let delta = 1.0 / (0.5 * w2.ln()).sqrt();
    let alpha = (2.0 / (w2 - 1.0)).sqrt();
    let t = y / alpha;
    Ok(delta * (t + (t * t + 1.0).sqrt()).ln())
}

/// Anscombe–Glynn transformed-kurtosis Z statistic.
fn kurt_z(data: &[f64]) -> Result<f64> {
    let n = data.len() as f64;
    let b2 = kurtosis(data)?;
    let mean_b2 = 3.0 * (n - 1.0) / (n + 1.0);
    let var_b2 =
        24.0 * n * (n - 2.0) * (n - 3.0) / ((n + 1.0) * (n + 1.0) * (n + 3.0) * (n + 5.0));
    let x = (b2 - mean_b2) / var_b2.sqrt();
    let sqrt_beta1 = 6.0 * (n * n - 5.0 * n + 2.0) / ((n + 7.0) * (n + 9.0))
        * (6.0 * (n + 3.0) * (n + 5.0) / (n * (n - 2.0) * (n - 3.0))).sqrt();
    let a = 6.0
        + 8.0 / sqrt_beta1
            * (2.0 / sqrt_beta1 + (1.0 + 4.0 / (sqrt_beta1 * sqrt_beta1)).sqrt());
    let term = (1.0 - 2.0 / a) / (1.0 + x * (2.0 / (a - 4.0)).sqrt());
    if term <= 0.0 {
        // Extremely heavy tails push the cube-root argument negative; the
        // statistic saturates far into the rejection region.
        return Ok(if x > 0.0 { 20.0 } else { -20.0 });
    }
    Ok(((1.0 - 2.0 / (9.0 * a)) - term.cbrt()) / (2.0 / (9.0 * a)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn matches_independent_reference_uniform_grid() {
        // Reference computed with an independent pure-Python implementation
        // of the D'Agostino / Anscombe-Glynn transforms; the chi²(2) p-value
        // is exactly exp(-K²/2).
        let data: Vec<f64> = (0..20).map(|x| x as f64).collect();
        let r = dagostino_k2(&data).unwrap();
        close(r.statistic, 2.909_789_172_646_44, 1e-10);
        close(r.p_value, 0.233_424_968_788_495, 1e-10);
        close(r.p_value, (-r.statistic / 2.0f64).exp(), 1e-12);
    }

    #[test]
    fn matches_independent_reference_skewed_sample() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 50.0];
        let r = dagostino_k2(&data).unwrap();
        close(r.statistic, 21.808_860_654_175_7, 1e-9);
        close(r.p_value / 1.837_663_886_174_26e-5, 1.0, 1e-8);
        assert!(r.rejects_normality(0.05));
    }

    #[test]
    fn near_normal_sample_not_rejected() {
        // Quantiles of the standard normal (a "perfectly normal" sample).
        let n = 50;
        let std = crate::dist::Normal::standard();
        let data: Vec<f64> = (1..=n)
            .map(|i| std.quantile(i as f64 / (n + 1) as f64).unwrap())
            .collect();
        let r = dagostino_k2(&data).unwrap();
        assert!(!r.rejects_normality(0.05), "p={}", r.p_value);
    }

    #[test]
    fn heavy_tail_saturation_path() {
        // One colossal outlier drives the kurtosis transform into the
        // saturated branch without panicking.
        let mut data: Vec<f64> = (0..30).map(|x| x as f64 * 0.01).collect();
        data.push(1e9);
        let r = dagostino_k2(&data).unwrap();
        assert!(r.rejects_normality(0.001));
    }

    #[test]
    fn requires_minimum_sample() {
        let data = [1.0, 2.0, 3.0];
        assert!(dagostino_k2(&data).is_err());
    }

    #[test]
    fn constant_data_is_degenerate() {
        let data = [5.0; 10];
        assert!(dagostino_k2(&data).is_err());
    }
}
