//! Kruskal–Wallis H test (rank-based, nonparametric omnibus test).

use crate::describe::{ranks, tie_group_sizes};
use crate::dist::ChiSquared;
use crate::error::Result;

use super::validate_groups;

/// Outcome of the Kruskal–Wallis H test.
#[derive(Debug, Clone, PartialEq)]
pub struct KruskalResult {
    /// Tie-corrected H statistic.
    pub statistic: f64,
    /// p-value against χ²(k − 1).
    pub p_value: f64,
    /// Degrees of freedom, `k − 1`.
    pub df: f64,
    /// Mean rank of each group (in input order); reused by Dunn's test.
    pub mean_ranks: Vec<f64>,
    /// Total number of observations across groups.
    pub n_total: usize,
}

impl KruskalResult {
    /// Whether the group distributions differ significantly at level `alpha`.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run the Kruskal–Wallis H test with tie correction.
///
/// Ranks are assigned jointly across all groups (midranks for ties); the raw
/// statistic is divided by the tie-correction factor
/// `C = 1 − Σ(t³ − t) / (N³ − N)`.
pub fn kruskal_wallis(groups: &[&[f64]]) -> Result<KruskalResult> {
    validate_groups(groups, 2, 1)?;
    let pooled: Vec<f64> = groups.iter().flat_map(|g| g.iter().copied()).collect();
    let n = pooled.len();
    let all_ranks = ranks(&pooled);

    let mut h = 0.0;
    let mut mean_ranks = Vec::with_capacity(groups.len());
    let mut pos = 0;
    for g in groups {
        let rank_sum: f64 = all_ranks[pos..pos + g.len()].iter().sum();
        pos += g.len();
        h += rank_sum * rank_sum / g.len() as f64;
        mean_ranks.push(rank_sum / g.len() as f64);
    }
    let n_f = n as f64;
    h = 12.0 / (n_f * (n_f + 1.0)) * h - 3.0 * (n_f + 1.0);

    let tie_sum: f64 = tie_group_sizes(&pooled)
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum();
    let correction = 1.0 - tie_sum / (n_f * n_f * n_f - n_f);
    if correction <= 0.0 {
        // Every observation identical: ranks carry no information.
        return Ok(KruskalResult {
            statistic: 0.0,
            p_value: 1.0,
            df: (groups.len() - 1) as f64,
            mean_ranks,
            n_total: n,
        });
    }
    let statistic = h / correction;
    let df = (groups.len() - 1) as f64;
    let p_value = ChiSquared::new(df)?.sf(statistic.max(0.0))?;
    Ok(KruskalResult { statistic, p_value, df, mean_ranks, n_total: n })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn matches_independent_reference_untied() {
        // H computed with an independent pure-Python implementation; the
        // chi²(2) p-value is exactly exp(-H/2).
        let g1 = [2.9, 3.0, 2.5, 2.6, 3.2];
        let g2 = [3.8, 2.7, 4.0, 2.4];
        let g3 = [2.8, 3.4, 3.7, 2.2, 2.0];
        let r = kruskal_wallis(&[&g1, &g2, &g3]).unwrap();
        close(r.statistic, 0.771_428_571_428_572, 1e-10);
        close(r.p_value, 0.679_964_773_578_894, 1e-10);
        assert!(!r.is_significant(0.05));
        assert_eq!(r.n_total, 14);
        close(r.df, 2.0, 1e-12);
    }

    #[test]
    fn matches_independent_reference_with_ties() {
        let a = [1.0, 1.0, 2.0, 2.0, 3.0];
        let b = [3.0, 3.0, 4.0, 4.0, 5.0];
        let c = [5.0, 5.0, 6.0, 6.0, 7.0];
        let r = kruskal_wallis(&[&a, &b, &c]).unwrap();
        close(r.statistic, 11.772_262_773_722_6, 1e-9);
        close(r.p_value, 2.777_701_791_563_87e-3, 1e-10);
        assert!(r.is_significant(0.05));
    }

    #[test]
    fn mean_ranks_ordered_with_shifted_groups() {
        let lo = [1.0, 2.0, 3.0];
        let hi = [10.0, 11.0, 12.0];
        let r = kruskal_wallis(&[&lo, &hi]).unwrap();
        assert!(r.mean_ranks[0] < r.mean_ranks[1]);
        close(r.mean_ranks[0], 2.0, 1e-12);
        close(r.mean_ranks[1], 5.0, 1e-12);
    }

    #[test]
    fn all_identical_observations_is_null() {
        let a = [7.0, 7.0, 7.0];
        let r = kruskal_wallis(&[&a, &a]).unwrap();
        close(r.statistic, 0.0, 1e-12);
        close(r.p_value, 1.0, 1e-12);
    }

    #[test]
    fn accepts_singleton_groups() {
        // KW tolerates n_i = 1 (unlike the variance-based tests).
        let a = [1.0];
        let b = [2.0, 3.0];
        let c = [4.0, 5.0, 6.0];
        let r = kruskal_wallis(&[&a, &b, &c]).unwrap();
        assert!(r.p_value > 0.0 && r.p_value <= 1.0);
    }

    #[test]
    fn rejects_single_group() {
        let a = [1.0, 2.0];
        assert!(kruskal_wallis(&[&a]).is_err());
    }
}
