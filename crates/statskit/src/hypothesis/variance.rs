//! Levene's test for homogeneity of variances (with the Brown–Forsythe
//! median-centered variant as the default, matching scipy's recommendation
//! for skewed data).

use crate::describe::{mean, median};
use crate::dist::FisherF;
use crate::error::Result;

use super::validate_groups;

/// Centering function for the Levene transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Center {
    /// Classic Levene: deviations from the group mean.
    Mean,
    /// Brown–Forsythe: deviations from the group median (robust default).
    Median,
}

/// Outcome of Levene's test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeveneResult {
    /// The W statistic (an F ratio on the transformed data).
    pub statistic: f64,
    /// p-value against `F(k − 1, N − k)`.
    pub p_value: f64,
    /// Numerator degrees of freedom, `k − 1`.
    pub df_between: f64,
    /// Denominator degrees of freedom, `N − k`.
    pub df_within: f64,
}

impl LeveneResult {
    /// Whether equal variances are rejected at significance level `alpha`.
    pub fn rejects_homogeneity(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run Levene's test across `groups` with the given centering.
///
/// The test performs a one-way ANOVA on `z_ij = |x_ij − center_i|`; a large W
/// means the spread differs across groups.
pub fn levene(groups: &[&[f64]], center: Center) -> Result<LeveneResult> {
    validate_groups(groups, 2, 2)?;
    let k = groups.len();
    let n_total: usize = groups.iter().map(|g| g.len()).sum();

    // Transform each observation into its absolute deviation from the
    // group's center.
    let mut z_groups: Vec<Vec<f64>> = Vec::with_capacity(k);
    for g in groups {
        let c = match center {
            Center::Mean => mean(g)?,
            Center::Median => median(g)?,
        };
        z_groups.push(g.iter().map(|x| (x - c).abs()).collect());
    }

    let z_means: Vec<f64> = z_groups.iter().map(|z| mean(z)).collect::<Result<_>>()?;
    let grand: f64 =
        z_groups.iter().flatten().sum::<f64>() / n_total as f64;

    let ss_between: f64 = z_groups
        .iter()
        .zip(&z_means)
        .map(|(z, &m)| z.len() as f64 * (m - grand) * (m - grand))
        .sum();
    let ss_within: f64 = z_groups
        .iter()
        .zip(&z_means)
        .map(|(z, &m)| z.iter().map(|v| (v - m) * (v - m)).sum::<f64>())
        .sum();

    let df_between = (k - 1) as f64;
    let df_within = (n_total - k) as f64;
    if ss_within <= 0.0 {
        // All deviations identical within groups: spread is exactly equal.
        return Ok(LeveneResult { statistic: 0.0, p_value: 1.0, df_between, df_within });
    }
    let statistic = (ss_between / df_between) / (ss_within / df_within);
    let p_value = FisherF::new(df_between, df_within)?.sf(statistic)?;
    Ok(LeveneResult { statistic, p_value, df_between, df_within })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn matches_independent_reference_median_centered() {
        // W computed with an independent pure-Python implementation of the
        // Brown-Forsythe transform; p checked against Simpson integration of
        // the F(2, 27) density.
        let a = [8.88, 9.12, 9.04, 8.98, 9.00, 9.08, 9.01, 8.85, 9.06, 8.99];
        let b = [8.88, 8.95, 9.29, 9.44, 9.15, 9.58, 8.36, 9.18, 8.67, 9.05];
        let c = [8.95, 9.12, 8.95, 8.85, 9.03, 8.84, 9.07, 8.98, 8.86, 8.98];
        let r = levene(&[&a, &b, &c], Center::Median).unwrap();
        close(r.statistic, 7.584_952_754_501_66, 1e-9);
        close(r.p_value, 2.431_505_967_25e-3, 1e-9);
        // Group b genuinely is much noisier than a and c.
        assert!(r.rejects_homogeneity(0.05));
    }

    #[test]
    fn detects_clearly_unequal_spread() {
        let tight = [10.0, 10.1, 9.9, 10.05, 9.95, 10.02, 9.98, 10.01];
        let wide = [10.0, 15.0, 5.0, 13.0, 7.0, 16.0, 4.0, 12.0];
        let r = levene(&[&tight, &wide], Center::Median).unwrap();
        assert!(r.rejects_homogeneity(0.01), "p={}", r.p_value);
    }

    #[test]
    fn mean_centering_variant_runs() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let r = levene(&[&a, &b], Center::Mean).unwrap();
        // Identical spreads: W = 0, p = 1.
        close(r.statistic, 0.0, 1e-12);
        close(r.p_value, 1.0, 1e-12);
    }

    #[test]
    fn degrees_of_freedom_reported() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.5, 3.5];
        let c = [2.0, 3.0, 4.0];
        let r = levene(&[&a, &b, &c], Center::Median).unwrap();
        close(r.df_between, 2.0, 1e-12);
        close(r.df_within, 6.0, 1e-12);
    }

    #[test]
    fn rejects_degenerate_layouts() {
        let a = [1.0, 2.0];
        assert!(levene(&[&a], Center::Median).is_err());
        let single = [1.0];
        assert!(levene(&[&a, &single], Center::Median).is_err());
    }
}
