//! Hypothesis tests backing the paper's A/B-test workflow (Fig. 10).
//!
//! The workflow first checks distributional assumptions — normality
//! ([`dagostino_k2`]) and variance homogeneity ([`levene`]) — then selects an
//! omnibus test: classical one-way ANOVA ([`one_way_anova`]) when both hold,
//! Welch's ANOVA ([`welch_anova`]) under heteroscedastic normal data, and the
//! Kruskal–Wallis H test ([`kruskal_wallis`]) otherwise.

mod anova;
mod kruskal;
mod normality;
mod variance;

pub use anova::{one_way_anova, welch_anova, AnovaResult};
pub use kruskal::{kruskal_wallis, KruskalResult};
pub use normality::{dagostino_k2, NormalityResult};
pub use variance::{levene, Center, LeveneResult};

use crate::error::{Result, StatsError};

/// Validate a group layout: at least `min_groups` groups, each with at least
/// `min_size` observations. Shared by every k-sample test here.
pub(crate) fn validate_groups(
    groups: &[&[f64]],
    min_groups: usize,
    min_size: usize,
) -> Result<()> {
    if groups.len() < min_groups {
        return Err(StatsError::degenerate(format!(
            "need at least {min_groups} groups, got {}",
            groups.len()
        )));
    }
    for (i, g) in groups.iter().enumerate() {
        if g.len() < min_size {
            return Err(StatsError::degenerate(format!(
                "group {i} has {} observations, need at least {min_size}",
                g.len()
            )));
        }
        if g.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::invalid(format!("group {i} contains non-finite values")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_small_layouts() {
        let a = [1.0, 2.0];
        let b = [3.0];
        assert!(validate_groups(&[&a], 2, 1).is_err());
        assert!(validate_groups(&[&a, &b], 2, 2).is_err());
        assert!(validate_groups(&[&a, &a], 2, 2).is_ok());
    }

    #[test]
    fn validate_rejects_non_finite() {
        let a = [1.0, f64::NAN];
        let b = [3.0, 4.0];
        assert!(validate_groups(&[&a, &b], 2, 2).is_err());
    }
}
