//! Multi-dimensional root-cause localization for CDI anomalies.
//!
//! When the event-level CDI curve spikes (Case 6 of the paper), engineers
//! need to know *where*: which region, cluster, machine model, or
//! combination thereof drives the anomaly. This module implements a
//! HotSpot-style search (Li et al., ISSRE'19 lineage): leaf measurements are
//! described by categorical attributes, candidate attribute combinations are
//! scored by the **potential score** of the ripple effect — how well "this
//! combination explains the whole deviation" predicts the observed leaf
//! values — and a layered beam search keeps the combinatorics tractable.

use std::collections::BTreeMap;

use crate::error::{Result, StatsError};

/// One leaf measurement: attribute values plus the forecast (expected) and
/// actual (observed) measure, e.g. a cluster-day's expected vs observed CDI
/// contribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaf {
    /// Attribute values, one per dimension (same order for every leaf).
    pub attributes: Vec<String>,
    /// Forecast value under normal conditions.
    pub forecast: f64,
    /// Observed value during the anomaly.
    pub actual: f64,
}

/// A candidate root cause: a set of `(dimension index, value)` constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct RootCause {
    /// Constraints defining the cause set; leaves matching all of them are
    /// "inside" the cause.
    pub constraints: Vec<(usize, String)>,
    /// Potential score in `[0, 1]`; higher means the cause better explains
    /// the observed deviation.
    pub score: f64,
    /// Total observed-minus-forecast deviation inside the cause set.
    pub deviation: f64,
}

impl RootCause {
    /// Human-readable rendering like `dim0=cn-hangzhou & dim2=modelX`.
    pub fn describe(&self, dimension_names: &[&str]) -> String {
        self.constraints
            .iter()
            .map(|(d, v)| format!("{}={v}", dimension_names.get(*d).copied().unwrap_or("?")))
            .collect::<Vec<_>>()
            .join(" & ")
    }
}

/// Configuration of the localization search.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Maximum number of dimensions combined in one cause (search depth).
    pub max_depth: usize,
    /// Beam width: candidates kept per layer.
    pub beam_width: usize,
    /// Candidates whose score falls below this are pruned.
    pub min_score: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { max_depth: 3, beam_width: 8, min_score: 0.5 }
    }
}

/// Localize root causes among the leaves.
///
/// Returns candidate causes sorted by descending potential score (best
/// explanation first). All leaves must share the same dimensionality.
pub fn localize(leaves: &[Leaf], config: &SearchConfig) -> Result<Vec<RootCause>> {
    if leaves.is_empty() {
        return Err(StatsError::degenerate("no leaves to localize over"));
    }
    let dims = leaves[0].attributes.len();
    if dims == 0 {
        return Err(StatsError::degenerate("leaves carry no attributes"));
    }
    if leaves.iter().any(|l| l.attributes.len() != dims) {
        return Err(StatsError::invalid("all leaves must have the same dimensionality"));
    }
    if config.max_depth == 0 || config.beam_width == 0 {
        return Err(StatsError::invalid("max_depth and beam_width must be positive"));
    }
    let total_deviation: f64 = leaves.iter().map(|l| l.actual - l.forecast).sum();
    if total_deviation.abs() < 1e-12 {
        return Err(StatsError::degenerate("no aggregate deviation to explain"));
    }

    // Layer 1: single-dimension candidates.
    let mut layer: Vec<RootCause> = Vec::new();
    for d in 0..dims {
        let mut values: BTreeMap<&str, ()> = BTreeMap::new();
        for l in leaves {
            values.entry(l.attributes[d].as_str()).or_insert(());
        }
        for (v, _) in values {
            let constraints = vec![(d, v.to_string())];
            if let Some(c) = score_candidate(leaves, &constraints) {
                layer.push(c);
            }
        }
    }
    let mut best: Vec<RootCause> = layer.clone();
    sort_and_trim(&mut layer, config.beam_width);

    // Deeper layers: extend each beam candidate with one extra dimension.
    for _depth in 2..=config.max_depth.min(dims) {
        let mut next: Vec<RootCause> = Vec::new();
        for cand in &layer {
            let used: Vec<usize> = cand.constraints.iter().map(|(d, _)| *d).collect();
            let max_used = used.iter().copied().max().unwrap_or(0);
            // Only extend with higher dimension indices to avoid duplicates.
            for d in (max_used + 1)..dims {
                let mut values: BTreeMap<&str, ()> = BTreeMap::new();
                for l in leaves {
                    if matches_constraints(l, &cand.constraints) {
                        values.entry(l.attributes[d].as_str()).or_insert(());
                    }
                }
                for (v, _) in values {
                    let mut constraints = cand.constraints.clone();
                    constraints.push((d, v.to_string()));
                    if let Some(c) = score_candidate(leaves, &constraints) {
                        next.push(c);
                    }
                }
            }
        }
        best.extend(next.iter().cloned());
        layer = next;
        sort_and_trim(&mut layer, config.beam_width);
        if layer.is_empty() {
            break;
        }
    }

    // Final ranking: score first; among (near-)ties prefer the more specific
    // cause only if it scores strictly better — otherwise simpler wins.
    best.retain(|c| c.score >= config.min_score);
    best.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.constraints.len().cmp(&b.constraints.len()))
    });
    best.dedup_by(|a, b| a.constraints == b.constraints);
    Ok(best)
}

/// Does the leaf satisfy every constraint?
fn matches_constraints(leaf: &Leaf, constraints: &[(usize, String)]) -> bool {
    constraints.iter().all(|(d, v)| leaf.attributes[*d] == *v)
}

/// Potential score of a candidate cause under the ripple-effect hypothesis.
///
/// Hypothesis: leaves inside the cause deviate (proportionally to their
/// forecast share of the inside total), leaves outside stay at forecast.
/// The score is `max(0, 1 − d(actual, hypothesis) / d(actual, forecast))`
/// over all leaves — 1 means the hypothesis reproduces reality exactly.
fn score_candidate(leaves: &[Leaf], constraints: &[(usize, String)]) -> Option<RootCause> {
    let mut inside_forecast = 0.0;
    let mut inside_actual = 0.0;
    let mut any_inside = false;
    for l in leaves {
        if matches_constraints(l, constraints) {
            inside_forecast += l.forecast;
            inside_actual += l.actual;
            any_inside = true;
        }
    }
    if !any_inside {
        return None;
    }
    let deviation = inside_actual - inside_forecast;

    let mut d_hypothesis = 0.0;
    let mut d_forecast = 0.0;
    for l in leaves {
        let predicted = if matches_constraints(l, constraints) {
            if inside_forecast.abs() > 1e-12 {
                // Ripple: distribute the inside total proportionally.
                l.forecast * inside_actual / inside_forecast
            } else {
                // Zero-forecast inside set: distribute evenly is arbitrary;
                // predict the actual mean of the inside set instead.
                inside_actual / leaves.iter().filter(|x| matches_constraints(x, constraints)).count() as f64
            }
        } else {
            l.forecast
        };
        d_hypothesis += (l.actual - predicted).abs();
        d_forecast += (l.actual - l.forecast).abs();
    }
    if d_forecast < 1e-12 {
        return None;
    }
    let score = (1.0 - d_hypothesis / d_forecast).max(0.0);
    Some(RootCause { constraints: constraints.to_vec(), score, deviation })
}

/// Sort candidates by descending score and keep the top `beam_width`.
fn sort_and_trim(candidates: &mut Vec<RootCause>, beam_width: usize) {
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score));
    candidates.truncate(beam_width);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cross product of regions × models, forecast 10 each, with `bump`
    /// applied to leaves matching the given predicate.
    fn build_leaves(bump: impl Fn(&str, &str) -> f64) -> Vec<Leaf> {
        let regions = ["hangzhou", "shanghai", "singapore"];
        let models = ["m1", "m2"];
        let mut leaves = Vec::new();
        for r in regions {
            for m in models {
                leaves.push(Leaf {
                    attributes: vec![r.to_string(), m.to_string()],
                    forecast: 10.0,
                    actual: 10.0 + bump(r, m),
                });
            }
        }
        leaves
    }

    #[test]
    fn localizes_single_dimension_cause() {
        // Everything in shanghai deviates, uniformly across models.
        let leaves = build_leaves(|r, _| if r == "shanghai" { 8.0 } else { 0.0 });
        let causes = localize(&leaves, &SearchConfig::default()).unwrap();
        let top = &causes[0];
        assert_eq!(top.constraints, vec![(0, "shanghai".to_string())]);
        assert!(top.score > 0.99, "score = {}", top.score);
        assert!((top.deviation - 16.0).abs() < 1e-9);
    }

    #[test]
    fn localizes_two_dimension_combination() {
        // Only (singapore, m2) deviates: the 2-D cause must beat both 1-D
        // parents.
        let leaves = build_leaves(|r, m| if r == "singapore" && m == "m2" { 12.0 } else { 0.0 });
        let causes = localize(&leaves, &SearchConfig::default()).unwrap();
        let top = &causes[0];
        assert_eq!(
            top.constraints,
            vec![(0, "singapore".to_string()), (1, "m2".to_string())]
        );
        assert!(top.score > 0.99);
    }

    #[test]
    fn prefers_simpler_cause_on_equal_score() {
        // All of region hangzhou deviates; (hangzhou, m1) and (hangzhou, m2)
        // each explain only part, so plain "hangzhou" must rank first.
        let leaves = build_leaves(|r, _| if r == "hangzhou" { 5.0 } else { 0.0 });
        let causes = localize(&leaves, &SearchConfig::default()).unwrap();
        assert_eq!(causes[0].constraints.len(), 1);
        assert_eq!(causes[0].constraints[0], (0, "hangzhou".to_string()));
    }

    #[test]
    fn describe_renders_readable_constraints() {
        let cause = RootCause {
            constraints: vec![(0, "shanghai".into()), (1, "m2".into())],
            score: 0.9,
            deviation: 3.0,
        };
        assert_eq!(cause.describe(&["region", "model"]), "region=shanghai & model=m2");
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(localize(&[], &SearchConfig::default()).is_err());
        let no_attrs = vec![Leaf { attributes: vec![], forecast: 1.0, actual: 2.0 }];
        assert!(localize(&no_attrs, &SearchConfig::default()).is_err());
        let quiet = build_leaves(|_, _| 0.0);
        assert!(localize(&quiet, &SearchConfig::default()).is_err());
        let ragged = vec![
            Leaf { attributes: vec!["a".into()], forecast: 1.0, actual: 2.0 },
            Leaf { attributes: vec!["a".into(), "b".into()], forecast: 1.0, actual: 2.0 },
        ];
        assert!(localize(&ragged, &SearchConfig::default()).is_err());
        let bad_config = SearchConfig { max_depth: 0, ..SearchConfig::default() };
        let leaves = build_leaves(|r, _| if r == "shanghai" { 1.0 } else { 0.0 });
        assert!(localize(&leaves, &bad_config).is_err());
    }

    #[test]
    fn min_score_prunes_weak_explanations() {
        // Deviation scattered randomly: no single cause should survive a
        // high score bar.
        let leaves = build_leaves(|r, m| match (r, m) {
            ("hangzhou", "m1") => 3.0,
            ("shanghai", "m2") => -2.0,
            ("singapore", "m1") => 1.5,
            _ => 0.1,
        });
        let strict = SearchConfig { min_score: 0.95, ..SearchConfig::default() };
        let causes = localize(&leaves, &strict).unwrap();
        assert!(
            causes.iter().all(|c| c.score >= 0.95),
            "only near-perfect explanations pass"
        );
    }
}
