//! Analytic Hierarchy Process (AHP) — multi-criteria decision making.
//!
//! The paper uses AHP to blend the expert-perceived and customer-perceived
//! severity of an event into a single weight (Section IV-C, Eq. 3). Given a
//! pairwise judgment matrix over perspectives, AHP extracts a priority
//! vector (the principal eigenvector) and a consistency ratio that validates
//! the judgments.

use crate::error::{Result, StatsError};

/// Random-index table (Saaty) for consistency-ratio computation, indexed by
/// matrix order `n` (entries for n = 1..=10; larger orders reuse the last).
const RANDOM_INDEX: [f64; 10] = [0.0, 0.0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41, 1.45, 1.49];

/// Result of an AHP priority extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct AhpResult {
    /// Normalized priority weights (sum to 1), one per criterion.
    pub priorities: Vec<f64>,
    /// Principal eigenvalue estimate λ_max.
    pub lambda_max: f64,
    /// Consistency index `(λ_max − n) / (n − 1)`.
    pub consistency_index: f64,
    /// Consistency ratio `CI / RI`; judgments with CR ≤ 0.1 are conventionally
    /// considered consistent.
    pub consistency_ratio: f64,
}

impl AhpResult {
    /// Whether the judgment matrix passes Saaty's CR ≤ 0.1 consistency check.
    pub fn is_consistent(&self) -> bool {
        self.consistency_ratio <= 0.1
    }
}

/// A pairwise judgment matrix for AHP.
///
/// Entry `(i, j)` states how much more important criterion `i` is than
/// criterion `j` on Saaty's 1–9 scale; the matrix must be positive and
/// reciprocal (`a_ji = 1 / a_ij`, `a_ii = 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct JudgmentMatrix {
    n: usize,
    data: Vec<f64>,
}

impl JudgmentMatrix {
    /// Build a judgment matrix from row-major entries, validating shape,
    /// positivity, unit diagonal, and reciprocity (to 1% tolerance).
    pub fn new(n: usize, entries: &[f64]) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::invalid("judgment matrix must be non-empty"));
        }
        if entries.len() != n * n {
            return Err(StatsError::invalid(format!(
                "expected {} entries for a {n}x{n} matrix, got {}",
                n * n,
                entries.len()
            )));
        }
        for (k, &v) in entries.iter().enumerate() {
            if !(v.is_finite() && v > 0.0) {
                return Err(StatsError::invalid(format!(
                    "judgment entries must be positive and finite, entry {k} = {v}"
                )));
            }
        }
        for i in 0..n {
            if (entries[i * n + i] - 1.0).abs() > 1e-9 {
                return Err(StatsError::invalid(format!(
                    "diagonal must be 1, entry ({i},{i}) = {}",
                    entries[i * n + i]
                )));
            }
            for j in (i + 1)..n {
                let prod = entries[i * n + j] * entries[j * n + i];
                if (prod - 1.0).abs() > 0.01 {
                    return Err(StatsError::invalid(format!(
                        "matrix must be reciprocal: a[{i}][{j}]*a[{j}][{i}] = {prod}"
                    )));
                }
            }
        }
        Ok(JudgmentMatrix { n, data: entries.to_vec() })
    }

    /// Convenience constructor from the upper triangle (row by row); the
    /// diagonal is set to 1 and the lower triangle to the reciprocals.
    ///
    /// For n = 3, `upper = [a12, a13, a23]`.
    pub fn from_upper_triangle(n: usize, upper: &[f64]) -> Result<Self> {
        let expected = n * (n - 1) / 2;
        if upper.len() != expected {
            return Err(StatsError::invalid(format!(
                "expected {expected} upper-triangle entries for n={n}, got {}",
                upper.len()
            )));
        }
        let mut data = vec![0.0; n * n];
        let mut next = 0usize;
        for i in 0..n {
            data[i * n + i] = 1.0;
            for j in (i + 1)..n {
                // `next` walks 0..expected, and `upper.len() == expected`
                // was checked above, so the index is always in range.
                let Some(&v) = upper.get(next) else {
                    return Err(StatsError::invalid("upper-triangle iterator exhausted early"));
                };
                next += 1;
                if !(v.is_finite() && v > 0.0) {
                    return Err(StatsError::invalid(format!(
                        "judgment entries must be positive, got {v}"
                    )));
                }
                data[i * n + j] = v;
                data[j * n + i] = 1.0 / v;
            }
        }
        Ok(JudgmentMatrix { n, data })
    }

    /// Matrix order.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Extract priorities by power iteration on the matrix (the principal
    /// eigenvector), plus the consistency diagnostics.
    pub fn priorities(&self) -> Result<AhpResult> {
        let n = self.n;
        if n == 1 {
            return Ok(AhpResult {
                priorities: vec![1.0],
                lambda_max: 1.0,
                consistency_index: 0.0,
                consistency_ratio: 0.0,
            });
        }
        let mut v = vec![1.0 / n as f64; n];
        let mut lambda = 0.0;
        for _ in 0..200 {
            let mut w = vec![0.0; n];
            for (i, wi) in w.iter_mut().enumerate() {
                for (j, vj) in v.iter().enumerate() {
                    *wi += self.get(i, j) * vj;
                }
            }
            let sum: f64 = w.iter().sum();
            if !(sum.is_finite() && sum > 0.0) {
                return Err(StatsError::NotConverged("AHP power iteration diverged".into()));
            }
            // λ_max estimate: mean of per-component Rayleigh quotients.
            let new_lambda = w
                .iter()
                .zip(&v)
                .map(|(wi, vi)| wi / vi)
                .sum::<f64>()
                / n as f64;
            for x in &mut w {
                *x /= sum;
            }
            let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
            v = w;
            lambda = new_lambda;
            if delta < 1e-14 {
                break;
            }
        }
        let ci = (lambda - n as f64) / (n as f64 - 1.0);
        let ri = RANDOM_INDEX[(n - 1).min(RANDOM_INDEX.len() - 1)];
        let cr = if ri > 0.0 { ci / ri } else { 0.0 };
        Ok(AhpResult {
            priorities: v,
            lambda_max: lambda,
            consistency_index: ci,
            consistency_ratio: cr,
        })
    }
}

/// Blend per-perspective scores into one weight using AHP priorities
/// (Eq. 3 of the paper): `w = Σ αᵢ·sᵢ / Σ αᵢ`.
///
/// With normalized priorities the denominator is 1, but the general form is
/// kept so that callers may pass a subset of perspectives.
pub fn blend_scores(priorities: &[f64], scores: &[f64]) -> Result<f64> {
    if priorities.len() != scores.len() || priorities.is_empty() {
        return Err(StatsError::invalid(format!(
            "need matching non-empty priorities/scores, got {}/{}",
            priorities.len(),
            scores.len()
        )));
    }
    let denom: f64 = priorities.iter().sum();
    if denom <= 0.0 {
        return Err(StatsError::degenerate("priorities sum to zero"));
    }
    let num: f64 = priorities.iter().zip(scores).map(|(a, s)| a * s).sum();
    Ok(num / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn two_criteria_equal_importance() {
        // The paper's Example 3 uses α₁ = α₂ = 0.5 — an equal-importance
        // 2x2 judgment matrix produces exactly that.
        let m = JudgmentMatrix::from_upper_triangle(2, &[1.0]).unwrap();
        let r = m.priorities().unwrap();
        close(r.priorities[0], 0.5, 1e-12);
        close(r.priorities[1], 0.5, 1e-12);
        close(r.lambda_max, 2.0, 1e-9);
        assert!(r.is_consistent());
    }

    #[test]
    fn consistent_matrix_recovers_exact_ratios() {
        // a:b = 2, a:c = 4, b:c = 2 is perfectly consistent with
        // priorities (4/7, 2/7, 1/7).
        let m = JudgmentMatrix::from_upper_triangle(3, &[2.0, 4.0, 2.0]).unwrap();
        let r = m.priorities().unwrap();
        close(r.priorities[0], 4.0 / 7.0, 1e-9);
        close(r.priorities[1], 2.0 / 7.0, 1e-9);
        close(r.priorities[2], 1.0 / 7.0, 1e-9);
        close(r.lambda_max, 3.0, 1e-8);
        assert!(r.consistency_ratio < 1e-6);
    }

    #[test]
    fn saaty_classic_example_is_consistent_enough() {
        // Classic 3x3 example: a12 = 3 (moderately more), a13 = 5, a23 = 2.
        let m = JudgmentMatrix::from_upper_triangle(3, &[3.0, 5.0, 2.0]).unwrap();
        let r = m.priorities().unwrap();
        assert!(r.is_consistent(), "CR = {}", r.consistency_ratio);
        assert!(r.priorities[0] > r.priorities[1]);
        assert!(r.priorities[1] > r.priorities[2]);
        close(r.priorities.iter().sum::<f64>(), 1.0, 1e-12);
    }

    #[test]
    fn inconsistent_matrix_flagged() {
        // a > b, b > c, but c > a: a cyclic (intransitive) judgment.
        let m = JudgmentMatrix::from_upper_triangle(3, &[5.0, 1.0 / 5.0, 5.0]).unwrap();
        let r = m.priorities().unwrap();
        assert!(!r.is_consistent(), "CR = {}", r.consistency_ratio);
    }

    #[test]
    fn validation_rejects_malformed_matrices() {
        assert!(JudgmentMatrix::new(0, &[]).is_err());
        assert!(JudgmentMatrix::new(2, &[1.0, 2.0, 0.5]).is_err()); // wrong len
        assert!(JudgmentMatrix::new(2, &[1.0, 2.0, 0.4, 1.0]).is_err()); // not reciprocal
        assert!(JudgmentMatrix::new(2, &[2.0, 2.0, 0.5, 1.0]).is_err()); // diagonal != 1
        assert!(JudgmentMatrix::new(2, &[1.0, -2.0, 0.5, 1.0]).is_err()); // negative
        assert!(JudgmentMatrix::from_upper_triangle(3, &[1.0]).is_err()); // wrong len
    }

    #[test]
    fn single_criterion_is_trivial() {
        let m = JudgmentMatrix::new(1, &[1.0]).unwrap();
        let r = m.priorities().unwrap();
        assert_eq!(r.priorities, vec![1.0]);
        assert_eq!(r.consistency_ratio, 0.0);
    }

    #[test]
    fn blend_matches_paper_example_3() {
        // Example 3: critical level l₃ = 0.75, customer level p₂ = 0.5,
        // α₁ = α₂ = 0.5 → w = 0.625.
        let w = blend_scores(&[0.5, 0.5], &[0.75, 0.5]).unwrap();
        close(w, 0.625, 1e-12);
    }

    #[test]
    fn blend_handles_unnormalized_priorities() {
        let w = blend_scores(&[2.0, 2.0], &[0.75, 0.5]).unwrap();
        close(w, 0.625, 1e-12);
        assert!(blend_scores(&[], &[]).is_err());
        assert!(blend_scores(&[1.0], &[0.5, 0.5]).is_err());
    }
}
