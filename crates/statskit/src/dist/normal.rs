//! Normal (Gaussian) distribution.

use crate::error::{Result, StatsError};
use crate::special::erfc;

/// Normal distribution with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Standard normal distribution (μ = 0, σ = 1).
    pub fn standard() -> Self {
        Normal { mu: 0.0, sigma: 1.0 }
    }

    /// Create a normal distribution; `sigma` must be strictly positive.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if sigma <= 0.0 || !sigma.is_finite() || !mu.is_finite() {
            return Err(StatsError::invalid(format!(
                "normal requires finite mu and sigma > 0, got mu={mu}, sigma={sigma}"
            )));
        }
        Ok(Normal { mu, sigma })
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sigma
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }

    /// Survival function `P(X > x)`, precise in the upper tail.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Quantile (inverse CDF) via Acklam's rational approximation refined by
    /// one Halley step; absolute error is below 1e-12 across `(0, 1)`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::invalid(format!("probability must be in [0,1], got {p}")));
        }
        if p == 0.0 {
            return Ok(f64::NEG_INFINITY);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        let z = standard_quantile(p);
        Ok(self.mu + self.sigma * z)
    }
}

/// Acklam's inverse standard-normal CDF with a Halley refinement step.
fn standard_quantile(p: f64) -> f64 {
    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method against the true CDF removes the ~1e-9
    // residual of the rational approximation.
    let std = Normal::standard();
    let e = std.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn standard_cdf_reference_values() {
        let n = Normal::standard();
        close(n.cdf(0.0), 0.5, 1e-14);
        close(n.cdf(1.0), 0.841_344_746_068_542_9, 1e-12);
        close(n.cdf(-1.959_963_984_540_054), 0.025, 1e-10);
        close(n.cdf(3.0), 0.998_650_101_968_369_9, 1e-12);
    }

    #[test]
    fn tail_survival_precision() {
        let n = Normal::standard();
        // scipy.stats.norm.sf(6) = 9.865876450376946e-10
        close(n.sf(6.0) / 9.865_876_450_376_946e-10, 1.0, 1e-6);
    }

    #[test]
    fn quantile_round_trips_cdf() {
        let n = Normal::standard();
        for &p in &[1e-10, 0.001, 0.025, 0.3, 0.5, 0.7, 0.975, 0.999, 1.0 - 1e-10] {
            let x = n.quantile(p).unwrap();
            close(n.cdf(x), p, 1e-11);
        }
        assert_eq!(n.quantile(0.0).unwrap(), f64::NEG_INFINITY);
        assert_eq!(n.quantile(1.0).unwrap(), f64::INFINITY);
    }

    #[test]
    fn quantile_known_points() {
        let n = Normal::standard();
        close(n.quantile(0.975).unwrap(), 1.959_963_984_540_054, 1e-9);
        close(n.quantile(0.5).unwrap(), 0.0, 1e-12);
    }

    #[test]
    fn shifted_and_scaled() {
        let n = Normal::new(10.0, 2.0).unwrap();
        close(n.cdf(10.0), 0.5, 1e-14);
        close(n.cdf(12.0), Normal::standard().cdf(1.0), 1e-13);
        close(n.pdf(10.0), 1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt()), 1e-13);
        close(n.quantile(0.841_344_746_068_542_9).unwrap(), 12.0, 1e-8);
    }

    #[test]
    fn rejects_bad_sigma() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn pdf_integrates_to_cdf_increment() {
        // Crude trapezoid check that pdf and cdf are mutually consistent.
        let n = Normal::standard();
        let (a, b) = (-1.0, 1.5);
        let steps = 20_000;
        let h = (b - a) / steps as f64;
        let mut integral = 0.5 * (n.pdf(a) + n.pdf(b));
        for i in 1..steps {
            integral += n.pdf(a + i as f64 * h);
        }
        integral *= h;
        close(integral, n.cdf(b) - n.cdf(a), 1e-9);
    }
}
