//! Student's t distribution.

use crate::error::{Result, StatsError};
use crate::special::{ln_beta, reg_beta};

use super::bisect_quantile;

/// Student's t distribution with `df > 0` degrees of freedom (fractional df
/// arise from Welch–Satterthwaite approximations in Games–Howell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Create a Student-t distribution with `df > 0`.
    pub fn new(df: f64) -> Result<Self> {
        if df <= 0.0 || !df.is_finite() {
            return Err(StatsError::invalid(format!("student-t df must be > 0, got {df}")));
        }
        Ok(StudentT { df })
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let v = self.df;
        let ln_norm = -0.5 * v.ln() - ln_beta(0.5, v / 2.0);
        (ln_norm - (v + 1.0) / 2.0 * (1.0 + x * x / v).ln()).exp()
    }

    /// Cumulative distribution function via the regularized incomplete beta:
    /// for `x >= 0`, `P(T <= x) = 1 - I_{v/(v+x²)}(v/2, 1/2) / 2`.
    pub fn cdf(&self, x: f64) -> Result<f64> {
        let v = self.df;
        if x == 0.0 {
            return Ok(0.5);
        }
        let ib = reg_beta(v / 2.0, 0.5, v / (v + x * x))?;
        Ok(if x > 0.0 { 1.0 - 0.5 * ib } else { 0.5 * ib })
    }

    /// Survival function `P(T > x)`, precise in the upper tail.
    pub fn sf(&self, x: f64) -> Result<f64> {
        let v = self.df;
        if x == 0.0 {
            return Ok(0.5);
        }
        let ib = reg_beta(v / 2.0, 0.5, v / (v + x * x))?;
        Ok(if x > 0.0 { 0.5 * ib } else { 1.0 - 0.5 * ib })
    }

    /// Two-sided p-value `P(|T| > |x|)` — the workhorse of the pairwise tests.
    pub fn two_sided_p(&self, x: f64) -> Result<f64> {
        let v = self.df;
        if x == 0.0 {
            return Ok(1.0);
        }
        reg_beta(v / 2.0, 0.5, v / (v + x * x))
    }

    /// Quantile (inverse CDF) by symmetric bisection.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::invalid(format!("probability must be in [0,1], got {p}")));
        }
        if p == 0.0 {
            return Ok(f64::NEG_INFINITY);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        if (p - 0.5).abs() < 1e-16 {
            return Ok(0.0);
        }
        // Exploit symmetry: solve for the upper half and mirror.
        let upper = p.max(1.0 - p);
        let mut hi = 2.0;
        while self.cdf(hi)? < upper {
            hi *= 2.0;
            if hi > 1e12 {
                return Err(StatsError::NotConverged(format!("t quantile bracket at p={p}")));
            }
        }
        let x = bisect_quantile(|x| self.cdf(x), upper, 0.0, hi)?;
        Ok(if p >= 0.5 { x } else { -x })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn cdf_reference_values() {
        // scipy.stats.t.cdf reference points.
        close(StudentT::new(1.0).unwrap().cdf(1.0).unwrap(), 0.75, 1e-12);
        close(StudentT::new(10.0).unwrap().cdf(2.228_138_851_986_273).unwrap(), 0.975, 1e-10);
        close(StudentT::new(5.0).unwrap().cdf(-2.015_048_372_669_157).unwrap(), 0.05, 1e-10);
    }

    #[test]
    fn converges_to_normal_for_large_df() {
        let t = StudentT::new(1e6).unwrap();
        let n = super::super::Normal::standard();
        for &x in &[-2.0, -0.5, 0.3, 1.96] {
            close(t.cdf(x).unwrap(), n.cdf(x), 1e-5);
        }
    }

    #[test]
    fn two_sided_p_matches_tails() {
        let t = StudentT::new(7.0).unwrap();
        for &x in &[0.5, 1.3, 3.0] {
            let p2 = t.two_sided_p(x).unwrap();
            close(p2, 2.0 * t.sf(x).unwrap(), 1e-12);
            close(p2, t.two_sided_p(-x).unwrap(), 1e-14);
        }
        close(t.two_sided_p(0.0).unwrap(), 1.0, 1e-14);
    }

    #[test]
    fn quantile_round_trip_and_symmetry() {
        for &df in &[1.0, 3.0, 12.0, 120.0] {
            let t = StudentT::new(df).unwrap();
            for &p in &[0.005, 0.1, 0.5, 0.9, 0.995] {
                let x = t.quantile(p).unwrap();
                close(t.cdf(x).unwrap(), p, 1e-9);
            }
            close(
                t.quantile(0.975).unwrap(),
                -t.quantile(0.025).unwrap(),
                1e-9,
            );
        }
    }

    #[test]
    fn cauchy_special_case() {
        // t(1) is the standard Cauchy: CDF(x) = 1/2 + atan(x)/π.
        let t = StudentT::new(1.0).unwrap();
        for &x in &[-4.0, -1.0, 0.7, 5.0] {
            close(
                t.cdf(x).unwrap(),
                0.5 + x.atan() / std::f64::consts::PI,
                1e-12,
            );
        }
    }

    #[test]
    fn pdf_reference() {
        // scipy.stats.t.pdf(0, 5) = 0.3796066898224944
        close(StudentT::new(5.0).unwrap().pdf(0.0), 0.379_606_689_822_494_4, 1e-12);
    }

    #[test]
    fn rejects_bad_args() {
        assert!(StudentT::new(0.0).is_err());
        assert!(StudentT::new(5.0).unwrap().quantile(2.0).is_err());
    }
}
