//! Fisher–Snedecor F distribution.

use crate::error::{Result, StatsError};
use crate::special::{ln_beta, reg_beta};

use super::bisect_quantile;

/// F distribution with numerator df `d1` and denominator df `d2` (both > 0,
/// possibly fractional — Welch's ANOVA produces a fractional denominator df).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FisherF {
    d1: f64,
    d2: f64,
}

impl FisherF {
    /// Create an F distribution; both degrees of freedom must be positive.
    pub fn new(d1: f64, d2: f64) -> Result<Self> {
        if d1 <= 0.0 || d2 <= 0.0 || !d1.is_finite() || !d2.is_finite() {
            return Err(StatsError::invalid(format!(
                "F distribution requires d1, d2 > 0, got d1={d1}, d2={d2}"
            )));
        }
        Ok(FisherF { d1, d2 })
    }

    /// Numerator degrees of freedom.
    pub fn d1(&self) -> f64 {
        self.d1
    }

    /// Denominator degrees of freedom.
    pub fn d2(&self) -> f64 {
        self.d2
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (d1, d2) = (self.d1, self.d2);
        let ln_num = (d1 / 2.0) * (d1 / d2).ln() + (d1 / 2.0 - 1.0) * x.ln()
            - ((d1 + d2) / 2.0) * (1.0 + d1 * x / d2).ln();
        (ln_num - ln_beta(d1 / 2.0, d2 / 2.0)).exp()
    }

    /// Cumulative distribution function:
    /// `P(F <= x) = I_{d1 x / (d1 x + d2)}(d1/2, d2/2)`.
    pub fn cdf(&self, x: f64) -> Result<f64> {
        if x <= 0.0 {
            return Ok(0.0);
        }
        reg_beta(self.d1 / 2.0, self.d2 / 2.0, self.d1 * x / (self.d1 * x + self.d2))
    }

    /// Survival function `P(F > x)` — the ANOVA p-value. Computed through the
    /// mirrored incomplete beta for upper-tail precision.
    pub fn sf(&self, x: f64) -> Result<f64> {
        if x <= 0.0 {
            return Ok(1.0);
        }
        reg_beta(self.d2 / 2.0, self.d1 / 2.0, self.d2 / (self.d1 * x + self.d2))
    }

    /// Quantile (inverse CDF) by bisection over an expanding bracket.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::invalid(format!("probability must be in [0,1], got {p}")));
        }
        if p == 0.0 {
            return Ok(0.0);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        let mut hi = 10.0;
        while self.cdf(hi)? < p {
            hi *= 2.0;
            if hi > 1e12 {
                return Err(StatsError::NotConverged(format!("F quantile bracket at p={p}")));
            }
        }
        bisect_quantile(|x| self.cdf(x), p, 0.0, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::StudentT;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn cdf_reference_values() {
        // Classical F-table critical values (7 significant digits), hence
        // the looser tolerance on the round-tripped probabilities.
        close(FisherF::new(3.0, 10.0).unwrap().cdf(3.708_265).unwrap(), 0.95, 1e-6);
        close(FisherF::new(1.0, 1.0).unwrap().cdf(1.0).unwrap(), 0.5, 1e-10);
        close(FisherF::new(5.0, 2.0).unwrap().cdf(19.296_41).unwrap(), 0.95, 1e-6);
    }

    #[test]
    fn sf_complements_cdf() {
        let f = FisherF::new(4.0, 7.0).unwrap();
        for &x in &[0.2, 1.0, 3.5, 10.0] {
            close(f.cdf(x).unwrap() + f.sf(x).unwrap(), 1.0, 1e-12);
        }
    }

    #[test]
    fn f_of_squared_t() {
        // If T ~ t(v) then T² ~ F(1, v): P(F <= x) = P(|T| <= √x).
        let v = 9.0;
        let f = FisherF::new(1.0, v).unwrap();
        let t = StudentT::new(v).unwrap();
        for &x in &[0.5_f64, 1.5, 4.0] {
            let via_t = 1.0 - t.two_sided_p(x.sqrt()).unwrap();
            close(f.cdf(x).unwrap(), via_t, 1e-12);
        }
    }

    #[test]
    fn quantile_round_trip() {
        for &(d1, d2) in &[(1.0, 1.0), (2.0, 10.0), (5.0, 3.7), (30.0, 30.0)] {
            let f = FisherF::new(d1, d2).unwrap();
            for &p in &[0.05, 0.5, 0.95, 0.999] {
                let x = f.quantile(p).unwrap();
                close(f.cdf(x).unwrap(), p, 1e-9);
            }
        }
    }

    #[test]
    fn pdf_reference() {
        // Analytic: f(1; 2, 5) = 1.4^{-3.5} = 0.3080008216940...
        close(FisherF::new(2.0, 5.0).unwrap().pdf(1.0), 1.4_f64.powf(-3.5), 1e-14);
        assert_eq!(FisherF::new(2.0, 5.0).unwrap().pdf(-1.0), 0.0);
    }

    #[test]
    fn rejects_bad_args() {
        assert!(FisherF::new(0.0, 1.0).is_err());
        assert!(FisherF::new(1.0, -1.0).is_err());
        assert!(FisherF::new(2.0, 2.0).unwrap().quantile(-0.5).is_err());
    }
}
