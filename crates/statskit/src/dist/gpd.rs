//! Generalized Pareto distribution (GPD) — the tail model fitted by the
//! SPOT/EVT anomaly detector ([`crate::anomaly::Spot`]).

use crate::error::{Result, StatsError};

/// Generalized Pareto distribution over excesses `x >= 0` with scale
/// `sigma > 0` and shape `xi` (any real; `xi < 0` gives a bounded tail).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralizedPareto {
    sigma: f64,
    xi: f64,
}

impl GeneralizedPareto {
    /// Create a GPD with scale `sigma > 0` and shape `xi`.
    pub fn new(sigma: f64, xi: f64) -> Result<Self> {
        if sigma <= 0.0 || !sigma.is_finite() || !xi.is_finite() {
            return Err(StatsError::invalid(format!(
                "GPD requires finite xi and sigma > 0, got sigma={sigma}, xi={xi}"
            )));
        }
        Ok(GeneralizedPareto { sigma, xi })
    }

    /// Scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Shape parameter.
    pub fn xi(&self) -> f64 {
        self.xi
    }

    /// Upper endpoint of the support (`∞` unless `xi < 0`).
    pub fn upper_bound(&self) -> f64 {
        if self.xi < 0.0 {
            -self.sigma / self.xi
        } else {
            f64::INFINITY
        }
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 || x > self.upper_bound() {
            return 0.0;
        }
        if self.xi.abs() < 1e-12 {
            (-x / self.sigma).exp() / self.sigma
        } else {
            let base = 1.0 + self.xi * x / self.sigma;
            if base <= 0.0 {
                0.0
            } else {
                base.powf(-1.0 / self.xi - 1.0) / self.sigma
            }
        }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if self.xi.abs() < 1e-12 {
            1.0 - (-x / self.sigma).exp()
        } else {
            let base = 1.0 + self.xi * x / self.sigma;
            if base <= 0.0 {
                // Beyond the upper endpoint when xi < 0.
                1.0
            } else {
                1.0 - base.powf(-1.0 / self.xi)
            }
        }
    }

    /// Survival function `P(X > x)` — the exceedance probability that SPOT
    /// converts into a dynamic alarm threshold.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile (inverse CDF), closed form.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::invalid(format!("probability must be in [0,1], got {p}")));
        }
        if p == 0.0 {
            return Ok(0.0);
        }
        if p == 1.0 {
            return Ok(self.upper_bound());
        }
        if self.xi.abs() < 1e-12 {
            Ok(-self.sigma * (1.0 - p).ln())
        } else {
            Ok(self.sigma / self.xi * ((1.0 - p).powf(-self.xi) - 1.0))
        }
    }

    /// Log-likelihood of a sample of excesses under this distribution.
    pub fn log_likelihood(&self, excesses: &[f64]) -> f64 {
        excesses
            .iter()
            .map(|&x| {
                let d = self.pdf(x);
                if d > 0.0 {
                    d.ln()
                } else {
                    f64::NEG_INFINITY
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn exponential_special_case() {
        let g = GeneralizedPareto::new(2.0, 0.0).unwrap();
        close(g.cdf(2.0), 1.0 - (-1.0_f64).exp(), 1e-12);
        close(g.quantile(0.5).unwrap(), 2.0 * 2.0_f64.ln(), 1e-12);
        assert_eq!(g.upper_bound(), f64::INFINITY);
    }

    #[test]
    fn heavy_tail_positive_xi() {
        let g = GeneralizedPareto::new(1.0, 0.5).unwrap();
        // cdf(x) = 1 - (1 + x/2)^{-2}
        close(g.cdf(2.0), 1.0 - (2.0_f64).powf(-2.0), 1e-12);
        let q = g.quantile(0.99).unwrap();
        close(g.cdf(q), 0.99, 1e-12);
    }

    #[test]
    fn bounded_tail_negative_xi() {
        let g = GeneralizedPareto::new(1.0, -0.5).unwrap();
        close(g.upper_bound(), 2.0, 1e-12);
        assert_eq!(g.cdf(3.0), 1.0);
        assert_eq!(g.pdf(3.0), 0.0);
        close(g.quantile(1.0).unwrap(), 2.0, 1e-12);
    }

    #[test]
    fn quantile_round_trips() {
        for &(s, xi) in &[(1.0, 0.0), (0.5, 0.3), (2.0, -0.2)] {
            let g = GeneralizedPareto::new(s, xi).unwrap();
            for &p in &[0.1, 0.5, 0.9, 0.999] {
                close(g.cdf(g.quantile(p).unwrap()), p, 1e-10);
            }
        }
    }

    #[test]
    fn log_likelihood_prefers_true_scale() {
        // Excesses drawn conceptually from Exp(1): LL at sigma=1 beats sigma=5.
        let sample = [0.1, 0.5, 0.7, 1.2, 2.0, 0.3, 0.9];
        let good = GeneralizedPareto::new(1.0, 0.0).unwrap().log_likelihood(&sample);
        let bad = GeneralizedPareto::new(5.0, 0.0).unwrap().log_likelihood(&sample);
        assert!(good > bad);
    }

    #[test]
    fn rejects_bad_args() {
        assert!(GeneralizedPareto::new(0.0, 0.1).is_err());
        assert!(GeneralizedPareto::new(-1.0, 0.1).is_err());
        assert!(GeneralizedPareto::new(1.0, f64::NAN).is_err());
        assert!(GeneralizedPareto::new(1.0, 0.1).unwrap().quantile(1.2).is_err());
    }
}
