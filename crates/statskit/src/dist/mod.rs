//! Probability distributions used by the hypothesis tests, post-hoc
//! procedures, and anomaly detectors.
//!
//! Each distribution exposes `pdf` / `cdf` / `sf` (survival function) and a
//! `quantile` (inverse CDF). CDFs reduce to the special functions of
//! [`crate::special`]; quantiles use closed forms where available (normal)
//! and guarded bisection elsewhere.

mod chi_squared;
mod fisher_f;
mod gpd;
mod normal;
mod student_t;
mod studentized_range;

pub use chi_squared::ChiSquared;
pub use fisher_f::FisherF;
pub use gpd::GeneralizedPareto;
pub use normal::Normal;
pub use student_t::StudentT;
pub use studentized_range::StudentizedRange;

use crate::error::{Result, StatsError};

/// Invert a monotone CDF by bisection over `[lo, hi]`.
///
/// `cdf` must be nondecreasing; the bracket is expanded by the callers before
/// invoking this. Converges to ~1e-12 in at most 200 iterations.
pub(crate) fn bisect_quantile(
    cdf: impl Fn(f64) -> Result<f64>,
    p: f64,
    mut lo: f64,
    mut hi: f64,
) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::invalid(format!("probability must be in [0,1], got {p}")));
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid)? < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_inverts_identity() {
        let q = bisect_quantile(Ok, 0.3, 0.0, 1.0).unwrap();
        assert!((q - 0.3).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_bad_probability() {
        assert!(bisect_quantile(Ok, 1.5, 0.0, 1.0).is_err());
    }
}
