//! Studentized range distribution — the reference distribution of the Tukey
//! HSD, Tukey–Kramer, and Games–Howell post-hoc tests.
//!
//! The CDF has no closed form. We evaluate the classical double integral
//!
//! ```text
//! P(Q ≤ q; k, ν) = ∫₀^∞ f_s(s; ν) · P∞(q·s; k) ds
//! P∞(r; k)       = k ∫ φ(z) [Φ(z) − Φ(z − r)]^{k−1} dz
//! ```
//!
//! where `s = √(χ²_ν / ν)` and `φ`, `Φ` are the standard normal pdf/CDF,
//! using composite Gauss–Legendre quadrature for both integrals. Accuracy is
//! better than 1e-6 across the ranges used by the post-hoc tests (k ≤ 20,
//! ν ≥ 2), verified in the tests against the exact k = 2 identity
//! `P(Q ≤ q; 2, ν) = 2·P(T_ν ≤ q/√2) − 1` and published Tukey tables.

use crate::error::{Result, StatsError};
use crate::special::ln_gamma;

use super::{bisect_quantile, Normal};

/// Degrees of freedom beyond which the χ scaling is treated as exactly 1.
const INF_DF: f64 = 1e5;

/// Studentized range distribution for `k >= 2` groups and `df > 0` error
/// degrees of freedom.
#[derive(Debug, Clone)]
pub struct StudentizedRange {
    k: usize,
    df: f64,
    /// Cached inner-integral abscissas (z), their weights, and φ(z)·weight.
    inner_nodes: Vec<(f64, f64)>,
    /// Cached Φ(z) at the inner abscissas.
    inner_cdf: Vec<f64>,
}

impl StudentizedRange {
    /// Create the distribution; requires `k >= 2` and `df > 0`.
    pub fn new(k: usize, df: f64) -> Result<Self> {
        if k < 2 {
            return Err(StatsError::invalid(format!(
                "studentized range requires k >= 2 groups, got {k}"
            )));
        }
        if df <= 0.0 || !df.is_finite() {
            return Err(StatsError::invalid(format!(
                "studentized range requires df > 0, got {df}"
            )));
        }
        // Composite 20-point Gauss–Legendre over z ∈ [-8.5, 8.5] in 16 panels.
        let (nodes, weights) = gauss_legendre(20);
        let std = Normal::standard();
        let mut inner_nodes = Vec::with_capacity(16 * 20);
        let (z_lo, z_hi, panels) = (-8.5_f64, 8.5_f64, 16usize);
        let h = (z_hi - z_lo) / panels as f64;
        for p in 0..panels {
            let a = z_lo + p as f64 * h;
            for (&x, &w) in nodes.iter().zip(&weights) {
                let z = a + 0.5 * h * (x + 1.0);
                let wz = 0.5 * h * w * std.pdf(z);
                inner_nodes.push((z, wz));
            }
        }
        let inner_cdf = inner_nodes.iter().map(|&(z, _)| std.cdf(z)).collect();
        Ok(StudentizedRange { k, df, inner_nodes, inner_cdf })
    }

    /// Number of groups.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Error degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Infinite-df range probability `P∞(r; k)`.
    fn p_inf(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 0.0;
        }
        let std = Normal::standard();
        let mut acc = 0.0;
        for (i, &(z, wz)) in self.inner_nodes.iter().enumerate() {
            let span = self.inner_cdf[i] - std.cdf(z - r);
            if span > 0.0 {
                acc += wz * span.powi(self.k as i32 - 1);
            }
        }
        (self.k as f64 * acc).clamp(0.0, 1.0)
    }

    /// Cumulative distribution function `P(Q <= q)`.
    pub fn cdf(&self, q: f64) -> Result<f64> {
        if q <= 0.0 {
            return Ok(0.0);
        }
        if self.df > INF_DF {
            return Ok(self.p_inf(q));
        }
        // Outer integral over the χ scale factor s with log-space density.
        let v = self.df;
        let ln_norm = (1.0 - v / 2.0) * std::f64::consts::LN_2 + (v / 2.0) * v.ln()
            - ln_gamma(v / 2.0)
            + std::f64::consts::LN_2 * 0.0; // kept explicit: density of s = √(χ²/ν)
        let log_density = |s: f64| -> f64 {
            // f_s(s) = 2 (ν/2)^{ν/2} / Γ(ν/2) · s^{ν−1} e^{−ν s²/2}
            std::f64::consts::LN_2 + (v / 2.0) * (v / 2.0).ln() - ln_gamma(v / 2.0)
                + (v - 1.0) * s.ln()
                - v * s * s / 2.0
        };
        let _ = ln_norm;
        // Integration range: the density of s concentrates around 1 with
        // spread ~ 1/√(2ν); cover (0, hi] generously for small ν.
        let hi = if v < 4.0 { 10.0 } else { 1.0 + 12.0 / (2.0 * v).sqrt() };
        let (nodes, weights) = gauss_legendre(16);
        let panels = 24usize;
        let h = hi / panels as f64;
        let mut acc = 0.0;
        for p in 0..panels {
            let a = p as f64 * h;
            for (&x, &w) in nodes.iter().zip(&weights) {
                let s = a + 0.5 * h * (x + 1.0);
                if s <= 0.0 {
                    continue;
                }
                let dens = log_density(s).exp();
                if dens < 1e-18 {
                    continue;
                }
                acc += 0.5 * h * w * dens * self.p_inf(q * s);
            }
        }
        Ok(acc.clamp(0.0, 1.0))
    }

    /// Survival function `P(Q > q)` — the post-hoc p-value.
    pub fn sf(&self, q: f64) -> Result<f64> {
        Ok(1.0 - self.cdf(q)?)
    }

    /// Quantile (inverse CDF) by bisection; used to derive critical values.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::invalid(format!("probability must be in [0,1], got {p}")));
        }
        if p == 0.0 {
            return Ok(0.0);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        let mut hi = 10.0;
        while self.cdf(hi)? < p {
            hi *= 2.0;
            if hi > 1e6 {
                return Err(StatsError::NotConverged(format!(
                    "studentized range quantile bracket at p={p}"
                )));
            }
        }
        bisect_quantile(|x| self.cdf(x), p, 0.0, hi)
    }
}

/// Nodes and weights of the `n`-point Gauss–Legendre rule on `[-1, 1]`,
/// computed by Newton iteration on the Legendre polynomial.
pub(crate) fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 2);
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev-based initial guess for the i-th root.
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            // Evaluate P_n(x) and P'_n(x) by the three-term recurrence.
            let mut p0 = 1.0;
            let mut p1 = x;
            for j in 2..=n {
                let j = j as f64;
                let p2 = ((2.0 * j - 1.0) * x * p1 - (j - 1.0) * p0) / j;
                p0 = p1;
                p1 = p2;
            }
            dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
            let dx = p1 / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        nodes[i] = -x;
        nodes[n - 1 - i] = x;
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    (nodes, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::StudentT;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (diff {})", (a - b).abs());
    }

    #[test]
    fn gauss_legendre_integrates_polynomials_exactly() {
        let (nodes, weights) = gauss_legendre(5);
        // ∫_{-1}^{1} x^8 dx = 2/9; a 5-point rule is exact to degree 9.
        let integral: f64 = nodes.iter().zip(&weights).map(|(&x, &w)| w * x.powi(8)).sum();
        close(integral, 2.0 / 9.0, 1e-13);
        let total: f64 = weights.iter().sum();
        close(total, 2.0, 1e-13);
    }

    #[test]
    fn k2_matches_student_t_identity() {
        // P(Q ≤ q; 2, ν) = 2 P(T_ν ≤ q/√2) − 1.
        for &df in &[3.0, 5.0, 10.0, 30.0] {
            let sr = StudentizedRange::new(2, df).unwrap();
            let t = StudentT::new(df).unwrap();
            for &q in &[1.0, 2.5, 3.64, 5.0] {
                let lhs = sr.cdf(q).unwrap();
                let rhs = 2.0 * t.cdf(q / std::f64::consts::SQRT_2).unwrap() - 1.0;
                close(lhs, rhs, 2e-6);
            }
        }
    }

    #[test]
    fn quantile_matches_tukey_tables() {
        // Published upper-5% studentized range critical values.
        let cases = [
            (3usize, 10.0, 3.877),  // q_{0.05}(3, 10)
            (4, 20.0, 3.958),       // q_{0.05}(4, 20)
            (5, 30.0, 4.102),       // q_{0.05}(5, 30)
            (2, 5.0, 3.6353),       // exact via √2·t_{0.975,5}
        ];
        for &(k, df, expected) in &cases {
            let sr = StudentizedRange::new(k, df).unwrap();
            let q = sr.quantile(0.95).unwrap();
            close(q, expected, 5e-3);
        }
    }

    #[test]
    fn cdf_monotone_in_q_and_k() {
        let sr3 = StudentizedRange::new(3, 12.0).unwrap();
        let mut prev = 0.0;
        for i in 1..=10 {
            let q = i as f64 * 0.7;
            let c = sr3.cdf(q).unwrap();
            assert!(c >= prev, "cdf must be nondecreasing");
            prev = c;
        }
        // More groups ⇒ larger range ⇒ smaller CDF at the same q.
        let sr6 = StudentizedRange::new(6, 12.0).unwrap();
        assert!(sr6.cdf(3.0).unwrap() < sr3.cdf(3.0).unwrap());
    }

    #[test]
    fn large_df_uses_normal_limit() {
        // q_{0.05}(3, ∞) = 3.314 from the classical tables.
        let sr = StudentizedRange::new(3, 1e7).unwrap();
        close(sr.quantile(0.95).unwrap(), 3.314, 5e-3);
    }

    #[test]
    fn sf_complements_cdf() {
        let sr = StudentizedRange::new(4, 15.0).unwrap();
        for &q in &[1.0, 3.0, 6.0] {
            close(sr.cdf(q).unwrap() + sr.sf(q).unwrap(), 1.0, 1e-12);
        }
    }

    #[test]
    fn rejects_bad_args() {
        assert!(StudentizedRange::new(1, 10.0).is_err());
        assert!(StudentizedRange::new(3, 0.0).is_err());
        assert!(StudentizedRange::new(3, 10.0).unwrap().quantile(-1.0).is_err());
    }

    #[test]
    fn boundaries() {
        let sr = StudentizedRange::new(3, 10.0).unwrap();
        assert_eq!(sr.cdf(0.0).unwrap(), 0.0);
        assert_eq!(sr.cdf(-2.0).unwrap(), 0.0);
        assert_eq!(sr.quantile(0.0).unwrap(), 0.0);
    }
}
