//! Chi-squared distribution.

use crate::error::{Result, StatsError};
use crate::special::{ln_gamma, reg_gamma_p, reg_gamma_q};

use super::bisect_quantile;

/// Chi-squared distribution with `k` degrees of freedom (`k > 0`, possibly
/// fractional — the tie-corrected Kruskal–Wallis statistic keeps integer df,
/// but Welch-style approximations elsewhere do not).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    df: f64,
}

impl ChiSquared {
    /// Create a chi-squared distribution with `df > 0` degrees of freedom.
    pub fn new(df: f64) -> Result<Self> {
        if df <= 0.0 || !df.is_finite() {
            return Err(StatsError::invalid(format!("chi-squared df must be > 0, got {df}")));
        }
        Ok(ChiSquared { df })
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Degenerate density at the origin for df < 2; conventionally 0 here.
            return if self.df == 2.0 { 0.5 } else { 0.0 };
        }
        let k2 = self.df / 2.0;
        ((k2 - 1.0) * x.ln() - x / 2.0 - k2 * std::f64::consts::LN_2 - ln_gamma(k2)).exp()
    }

    /// Cumulative distribution function `P(X <= x) = P(k/2, x/2)`.
    pub fn cdf(&self, x: f64) -> Result<f64> {
        if x <= 0.0 {
            return Ok(0.0);
        }
        reg_gamma_p(self.df / 2.0, x / 2.0)
    }

    /// Survival function `P(X > x)`, precise in the upper tail.
    pub fn sf(&self, x: f64) -> Result<f64> {
        if x <= 0.0 {
            return Ok(1.0);
        }
        reg_gamma_q(self.df / 2.0, x / 2.0)
    }

    /// Quantile (inverse CDF) by bisection over an expanding bracket.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::invalid(format!("probability must be in [0,1], got {p}")));
        }
        if p == 0.0 {
            return Ok(0.0);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        // The mean is df and the std dev √(2 df); expand the bracket until
        // the CDF straddles p.
        let mut hi = self.df + 10.0 * (2.0 * self.df).sqrt() + 10.0;
        while self.cdf(hi)? < p {
            hi *= 2.0;
        }
        bisect_quantile(|x| self.cdf(x), p, 0.0, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn cdf_reference_values() {
        // scipy.stats.chi2.cdf reference points.
        close(ChiSquared::new(2.0).unwrap().cdf(2.0).unwrap(), 0.632_120_558_828_557_7, 1e-12);
        close(ChiSquared::new(5.0).unwrap().cdf(4.351).unwrap(), 0.5, 2e-4);
        close(ChiSquared::new(1.0).unwrap().cdf(3.841_458_820_694_124).unwrap(), 0.95, 1e-10);
        close(ChiSquared::new(10.0).unwrap().cdf(18.307_038_053_275_146).unwrap(), 0.95, 1e-10);
    }

    #[test]
    fn sf_tail_precision() {
        // scipy.stats.chi2.sf(50, 2) = 1.3887943864964021e-11
        let c = ChiSquared::new(2.0).unwrap();
        close(c.sf(50.0).unwrap() / 1.388_794_386_496_402_1e-11, 1.0, 1e-8);
    }

    #[test]
    fn quantile_round_trip() {
        for &df in &[1.0, 2.0, 4.5, 30.0] {
            let c = ChiSquared::new(df).unwrap();
            for &p in &[0.01, 0.25, 0.5, 0.9, 0.999] {
                let x = c.quantile(p).unwrap();
                close(c.cdf(x).unwrap(), p, 1e-9);
            }
        }
    }

    #[test]
    fn pdf_known_exponential_case() {
        // chi2(2) is Exp(1/2): pdf(x) = e^{-x/2} / 2.
        let c = ChiSquared::new(2.0).unwrap();
        for &x in &[0.5, 1.0, 3.0] {
            close(c.pdf(x), 0.5 * (-x / 2.0f64).exp(), 1e-12);
        }
    }

    #[test]
    fn rejects_bad_df_and_probability() {
        assert!(ChiSquared::new(0.0).is_err());
        assert!(ChiSquared::new(-3.0).is_err());
        assert!(ChiSquared::new(2.0).unwrap().quantile(-0.1).is_err());
    }

    #[test]
    fn boundaries() {
        let c = ChiSquared::new(3.0).unwrap();
        assert_eq!(c.cdf(-1.0).unwrap(), 0.0);
        assert_eq!(c.sf(-1.0).unwrap(), 1.0);
        assert_eq!(c.quantile(0.0).unwrap(), 0.0);
        assert_eq!(c.quantile(1.0).unwrap(), f64::INFINITY);
    }
}
