//! Seasonal-trend decomposition for metric time series.
//!
//! The paper's event extractor combines BacktrackSTL (Wang et al., KDD'24)
//! with EVT to turn metric series into events (Section II-C). This module
//! provides the decomposition half in two flavours:
//!
//! - [`decompose`] — classical batch seasonal-trend decomposition (centered
//!   moving-average trend, per-phase seasonal means), for offline analysis.
//! - [`OnlineStl`] — an online decomposer in the BacktrackSTL spirit: O(1)
//!   per point, EWMA seasonal profile, robust rolling-median trend, and a
//!   *backtrack gate* that refuses to absorb anomalous points into the model
//!   so that the residual stream stays clean for the downstream
//!   [`crate::anomaly::Spot`] detector.

use std::collections::VecDeque;

use crate::describe::median;
use crate::error::{Result, StatsError};

/// One decomposed observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StlPoint {
    /// Slow-moving level component.
    pub trend: f64,
    /// Periodic component for this observation's phase.
    pub seasonal: f64,
    /// What remains: `value − trend − seasonal`. This is what anomaly
    /// detection consumes.
    pub residual: f64,
}

/// Batch decomposition of a full series.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Trend component, same length as the input.
    pub trend: Vec<f64>,
    /// Seasonal component, same length as the input.
    pub seasonal: Vec<f64>,
    /// Residual component, same length as the input.
    pub residual: Vec<f64>,
}

/// Classical batch seasonal-trend decomposition.
///
/// Trend is a centered moving average of width `period` (with shrinking
/// windows at the edges); the seasonal profile is the per-phase mean of the
/// detrended series, centered to sum to zero; the residual is the remainder.
/// Requires at least two full periods of data.
pub fn decompose(series: &[f64], period: usize) -> Result<Decomposition> {
    if period < 2 {
        return Err(StatsError::invalid(format!("period must be >= 2, got {period}")));
    }
    if series.len() < 2 * period {
        return Err(StatsError::degenerate(format!(
            "need >= 2 periods ({} points), got {}",
            2 * period,
            series.len()
        )));
    }
    let n = series.len();
    let half = period / 2;

    // Centered moving average; window shrinks symmetrically near the edges.
    let mut trend = Vec::with_capacity(n);
    for i in 0..n {
        let r = half.min(i).min(n - 1 - i);
        let window = &series[i - r..=i + r];
        trend.push(window.iter().sum::<f64>() / window.len() as f64);
    }

    // Per-phase mean of detrended values, centered to zero mean.
    let mut phase_sum = vec![0.0; period];
    let mut phase_count = vec![0usize; period];
    for i in 0..n {
        phase_sum[i % period] += series[i] - trend[i];
        phase_count[i % period] += 1;
    }
    let mut profile: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_count)
        .map(|(s, &c)| s / c as f64)
        .collect();
    let profile_mean = profile.iter().sum::<f64>() / period as f64;
    for p in &mut profile {
        *p -= profile_mean;
    }

    let seasonal: Vec<f64> = (0..n).map(|i| profile[i % period]).collect();
    let residual: Vec<f64> =
        (0..n).map(|i| series[i] - trend[i] - seasonal[i]).collect();
    Ok(Decomposition { trend, seasonal, residual })
}

/// Online seasonal-trend decomposer with a backtrack-style anomaly gate.
#[derive(Debug, Clone)]
pub struct OnlineStl {
    period: usize,
    /// EWMA smoothing factor for the seasonal profile.
    seasonal_alpha: f64,
    /// Residuals larger than `gate_k` robust sigmas are not absorbed.
    gate_k: f64,
    /// Per-phase seasonal estimates and whether each has been initialized.
    profile: Vec<f64>,
    profile_init: Vec<bool>,
    /// Recent deseasonalized values feeding the rolling-median trend.
    recent: VecDeque<f64>,
    trend_window: usize,
    /// Robust residual scale estimate (EWMA of |residual|).
    resid_scale: f64,
    observed: usize,
}

impl OnlineStl {
    /// Create an online decomposer.
    ///
    /// - `period`: season length in samples (`>= 2`).
    /// - `trend_window`: rolling-median window for the trend (`>= 3`).
    /// - `seasonal_alpha`: EWMA factor in `(0, 1]` for profile updates.
    /// - `gate_k`: backtrack gate width in robust sigmas (`> 0`); points with
    ///   residuals beyond the gate are decomposed but not learned from.
    pub fn new(period: usize, trend_window: usize, seasonal_alpha: f64, gate_k: f64) -> Result<Self> {
        if period < 2 {
            return Err(StatsError::invalid(format!("period must be >= 2, got {period}")));
        }
        if trend_window < 3 {
            return Err(StatsError::invalid(format!(
                "trend_window must be >= 3, got {trend_window}"
            )));
        }
        if !(0.0..=1.0).contains(&seasonal_alpha) || seasonal_alpha == 0.0 {
            return Err(StatsError::invalid(format!(
                "seasonal_alpha must be in (0,1], got {seasonal_alpha}"
            )));
        }
        if gate_k <= 0.0 {
            return Err(StatsError::invalid(format!("gate_k must be > 0, got {gate_k}")));
        }
        Ok(OnlineStl {
            period,
            seasonal_alpha,
            gate_k,
            profile: vec![0.0; period],
            profile_init: vec![false; period],
            recent: VecDeque::new(),
            trend_window,
            resid_scale: 0.0,
            observed: 0,
        })
    }

    /// Number of points observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Whether the model is past its warm-up (one full period seen).
    pub fn warmed_up(&self) -> bool {
        self.observed >= self.period.max(self.trend_window)
    }

    /// Observe one value and return its decomposition.
    pub fn observe(&mut self, value: f64) -> StlPoint {
        let phase = self.observed % self.period;
        let seasonal = if self.profile_init[phase] { self.profile[phase] } else { 0.0 };
        let deseasonalized = value - seasonal;

        let trend = if self.recent.is_empty() {
            deseasonalized
        } else {
            let buf: Vec<f64> = self.recent.iter().copied().collect();
            // The buffer is non-empty here; fall back to the current
            // deseasonalized value rather than panic if that ever changes.
            median(&buf).unwrap_or(deseasonalized)
        };
        let residual = deseasonalized - trend;

        // Backtrack gate: during warm-up learn everything; afterwards refuse
        // to absorb points whose residual dwarfs the running scale.
        let anomalous = self.warmed_up()
            && self.resid_scale > 0.0
            && residual.abs() > self.gate_k * self.resid_scale;

        if !anomalous {
            if self.recent.len() == self.trend_window {
                self.recent.pop_front();
            }
            self.recent.push_back(deseasonalized);
            if self.profile_init[phase] {
                self.profile[phase] = (1.0 - self.seasonal_alpha) * self.profile[phase]
                    + self.seasonal_alpha * (value - trend);
            } else {
                self.profile[phase] = value - trend;
                self.profile_init[phase] = true;
            }
            // Robust scale: EWMA of absolute residuals (≈ 0.8 σ for normals).
            let alpha = 0.05;
            self.resid_scale = if self.resid_scale == 0.0 {
                residual.abs().max(1e-12)
            } else {
                (1.0 - alpha) * self.resid_scale + alpha * residual.abs()
            };
        }
        self.observed += 1;
        StlPoint { trend, seasonal, residual }
    }

    /// Decompose a whole series, returning the residual stream (the usual
    /// input to the EVT detector).
    pub fn residuals(&mut self, series: &[f64]) -> Vec<f64> {
        series.iter().map(|&v| self.observe(v).residual).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(n: usize, period: usize) -> Vec<f64> {
        // level 10, mild upward drift, sinusoidal season of amplitude 3.
        (0..n)
            .map(|i| {
                10.0 + 0.01 * i as f64
                    + 3.0
                        * (2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64)
                            .sin()
            })
            .collect()
    }

    #[test]
    fn batch_decomposition_reconstructs_series() {
        let series = synthetic(96, 24);
        let d = decompose(&series, 24).unwrap();
        for (i, &x) in series.iter().enumerate() {
            let recon = d.trend[i] + d.seasonal[i] + d.residual[i];
            assert!((recon - x).abs() < 1e-10);
        }
    }

    #[test]
    fn batch_seasonal_profile_has_zero_mean_and_right_amplitude() {
        let series = synthetic(240, 24);
        let d = decompose(&series, 24).unwrap();
        let profile: Vec<f64> = d.seasonal[..24].to_vec();
        let mean: f64 = profile.iter().sum::<f64>() / 24.0;
        assert!(mean.abs() < 1e-9);
        let max = profile.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 3.0).abs() < 0.5, "amplitude ~3, got {max}");
    }

    #[test]
    fn batch_residuals_are_small_for_clean_series() {
        let series = synthetic(240, 24);
        let d = decompose(&series, 24).unwrap();
        // Skip the edge-affected first/last period.
        for i in 24..216 {
            assert!(d.residual[i].abs() < 0.8, "residual[{i}]={}", d.residual[i]);
        }
    }

    #[test]
    fn batch_rejects_bad_inputs() {
        assert!(decompose(&[1.0; 10], 1).is_err());
        assert!(decompose(&[1.0; 10], 8).is_err());
    }

    #[test]
    fn online_residual_spikes_on_injected_anomaly() {
        let mut series = synthetic(300, 24);
        series[200] += 15.0;
        let mut stl = OnlineStl::new(24, 5, 0.3, 6.0).unwrap();
        let residuals = stl.residuals(&series);
        let baseline: f64 = residuals[100..190].iter().map(|r| r.abs()).sum::<f64>() / 90.0;
        assert!(
            residuals[200].abs() > 10.0 * baseline.max(0.1),
            "anomaly residual {} vs baseline {baseline}",
            residuals[200]
        );
    }

    #[test]
    fn online_gate_prevents_anomaly_absorption() {
        let mut series = synthetic(300, 24);
        series[200] += 15.0;
        let mut stl = OnlineStl::new(24, 5, 0.3, 6.0).unwrap();
        let residuals = stl.residuals(&series);
        // The points right after the anomaly must not inherit a distorted
        // model: their residuals stay in the normal band.
        for (i, r) in residuals.iter().enumerate().take(206).skip(201) {
            assert!(r.abs() < 2.0, "post-anomaly residual[{i}]={r}");
        }
    }

    #[test]
    fn online_tracks_drift() {
        let series = synthetic(480, 24);
        let mut stl = OnlineStl::new(24, 5, 0.3, 6.0).unwrap();
        let mut last_trend = 0.0;
        for &v in &series {
            last_trend = stl.observe(v).trend;
        }
        // Drift reaches 10 + 0.01*480 ≈ 14.8 at the end.
        assert!((last_trend - 14.5).abs() < 1.5, "trend={last_trend}");
        assert!(stl.warmed_up());
        assert_eq!(stl.observed(), 480);
    }

    #[test]
    fn online_rejects_bad_params() {
        assert!(OnlineStl::new(1, 5, 0.3, 6.0).is_err());
        assert!(OnlineStl::new(24, 2, 0.3, 6.0).is_err());
        assert!(OnlineStl::new(24, 5, 0.0, 6.0).is_err());
        assert!(OnlineStl::new(24, 5, 1.5, 6.0).is_err());
        assert!(OnlineStl::new(24, 5, 0.3, 0.0).is_err());
    }
}
