//! Trend detection for CDI curves: the Mann–Kendall test and Sen's slope.
//!
//! Case 4 of the paper reads yearly improvements off smoothed CDI curves;
//! Mann–Kendall turns "the curve looks like it declines" into a p-value
//! (nonparametric, tie-aware), and Sen's slope estimates the per-step
//! change robustly. Both are standard companions to the K-Sigma/EVT spike
//! detectors for *slow* drifts that never trip a threshold.

use crate::describe::{median, tie_group_sizes};
use crate::dist::Normal;
use crate::error::{Result, StatsError};

/// Direction of a detected trend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendDirection {
    /// Statistically significant increase.
    Increasing,
    /// Statistically significant decrease.
    Decreasing,
    /// No significant monotone trend.
    None,
}

/// Outcome of the Mann–Kendall test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannKendallResult {
    /// The S statistic (Σ sign of pairwise differences).
    pub s: i64,
    /// Normal-approximation Z score (continuity-corrected).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Sen's slope: the median of all pairwise slopes.
    pub sen_slope: f64,
}

impl MannKendallResult {
    /// Classify the trend at significance level `alpha`.
    pub fn direction(&self, alpha: f64) -> TrendDirection {
        if self.p_value >= alpha {
            TrendDirection::None
        } else if self.s > 0 {
            TrendDirection::Increasing
        } else {
            TrendDirection::Decreasing
        }
    }
}

/// Run the Mann–Kendall trend test with tie correction (requires `n >= 4`).
pub fn mann_kendall(series: &[f64]) -> Result<MannKendallResult> {
    let n = series.len();
    if n < 4 {
        return Err(StatsError::degenerate(format!("Mann-Kendall requires n >= 4, got {n}")));
    }
    if series.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::invalid("series contains non-finite values"));
    }
    let mut s: i64 = 0;
    let mut slopes = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = series[j] - series[i];
            s += if d > 0.0 {
                1
            } else if d < 0.0 {
                -1
            } else {
                0
            };
            slopes.push(d / (j - i) as f64);
        }
    }
    let nf = n as f64;
    let tie_term: f64 = tie_group_sizes(series)
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * (t - 1.0) * (2.0 * t + 5.0)
        })
        .sum();
    let var_s = (nf * (nf - 1.0) * (2.0 * nf + 5.0) - tie_term) / 18.0;
    if var_s <= 0.0 {
        // All values identical.
        return Ok(MannKendallResult { s: 0, z: 0.0, p_value: 1.0, sen_slope: 0.0 });
    }
    // Continuity correction toward zero.
    let z = match s.cmp(&0) {
        std::cmp::Ordering::Greater => (s as f64 - 1.0) / var_s.sqrt(),
        std::cmp::Ordering::Less => (s as f64 + 1.0) / var_s.sqrt(),
        std::cmp::Ordering::Equal => 0.0,
    };
    let p_value = (2.0 * Normal::standard().sf(z.abs())).min(1.0);
    let sen_slope = median(&slopes)?;
    Ok(MannKendallResult { s, z, p_value, sen_slope })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn strictly_increasing_series() {
        let series: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
        let r = mann_kendall(&series).unwrap();
        assert_eq!(r.s, (20 * 19 / 2) as i64);
        assert!(r.p_value < 1e-6);
        assert_eq!(r.direction(0.05), TrendDirection::Increasing);
        close(r.sen_slope, 0.5, 1e-12);
    }

    #[test]
    fn declining_cdi_curve_detected() {
        // The FY2024 story: declining level plus deterministic wobble.
        let series: Vec<f64> = (0..48)
            .map(|i| 1.0 - 0.01 * i as f64 + 0.02 * ((i * 7) % 5) as f64 / 5.0)
            .collect();
        let r = mann_kendall(&series).unwrap();
        assert_eq!(r.direction(0.05), TrendDirection::Decreasing);
        assert!(r.sen_slope < 0.0);
        close(r.sen_slope, -0.01, 0.003);
    }

    #[test]
    fn no_trend_in_alternating_series() {
        let series: Vec<f64> = (0..30).map(|i| if i % 2 == 0 { 1.0 } else { 2.0 }).collect();
        let r = mann_kendall(&series).unwrap();
        assert_eq!(r.direction(0.05), TrendDirection::None, "p = {}", r.p_value);
    }

    #[test]
    fn constant_series_is_null() {
        let r = mann_kendall(&[3.0; 10]).unwrap();
        assert_eq!(r.s, 0);
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.sen_slope, 0.0);
        assert_eq!(r.direction(0.05), TrendDirection::None);
    }

    #[test]
    fn tie_correction_applies() {
        // Mostly flat with a few increases: ties shrink Var(S) and the test
        // still runs.
        let series = [1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 4.0];
        let r = mann_kendall(&series).unwrap();
        assert!(r.s > 0);
        assert_eq!(r.direction(0.05), TrendDirection::Increasing);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(mann_kendall(&[1.0, 2.0, 3.0]).is_err());
        assert!(mann_kendall(&[1.0, f64::NAN, 2.0, 3.0]).is_err());
    }
}
