//! Post-hoc pairwise comparison procedures (Section VI-D of the paper).
//!
//! After a significant omnibus test, these identify *which* groups differ:
//!
//! - [`tukey_hsd`] — Tukey's honestly-significant-difference test; with
//!   unequal group sizes it automatically becomes the Tukey–Kramer test.
//!   Assumes normality and homogeneous variances.
//! - [`games_howell`] — for heteroscedastic normal data (the Welch-ANOVA
//!   companion), with per-pair Welch–Satterthwaite degrees of freedom.
//! - [`dunn`] — rank-based companion to Kruskal–Wallis, with tie correction
//!   and the usual multiple-comparison adjustments.

use crate::describe::{mean, ranks, tie_group_sizes, variance};
use crate::dist::{Normal, StudentizedRange};
use crate::error::{Result, StatsError};
use crate::hypothesis::one_way_anova;

/// Multiple-comparison p-value adjustment for [`dunn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adjustment {
    /// Report unadjusted p-values.
    None,
    /// Bonferroni: multiply each p by the number of comparisons.
    Bonferroni,
    /// Holm step-down: uniformly more powerful than Bonferroni.
    Holm,
}

/// One pairwise comparison between groups `a` and `b` (indices into the
/// caller's group slice).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseComparison {
    /// Index of the first group.
    pub group_a: usize,
    /// Index of the second group.
    pub group_b: usize,
    /// Difference of group means (Tukey/Games–Howell) or mean ranks (Dunn),
    /// `a − b`.
    pub difference: f64,
    /// The test statistic (studentized range `q`, or Dunn's `z`).
    pub statistic: f64,
    /// The (possibly adjusted) two-sided p-value.
    pub p_value: f64,
    /// Degrees of freedom used for this pair.
    pub df: f64,
    /// Standard error of `difference` (the denominator of the statistic).
    pub std_error: f64,
}

impl PairwiseComparison {
    /// Whether this pair differs significantly at level `alpha`.
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Simultaneous `(1 − alpha)` confidence interval for the difference.
    ///
    /// Tukey/Games–Howell pairs use the studentized range critical value
    /// with `k` groups at this pair's df (the family-wise Tukey interval);
    /// Dunn pairs (infinite df) fall back to the plain normal interval on
    /// the mean-rank difference.
    pub fn confidence_interval(&self, k: usize, alpha: f64) -> Result<(f64, f64)> {
        let half = if self.df.is_finite() {
            StudentizedRange::new(k, self.df)?.quantile(1.0 - alpha)? * self.std_error
        } else {
            Normal::standard().quantile(1.0 - alpha / 2.0)? * self.std_error
        };
        Ok((self.difference - half, self.difference + half))
    }
}

/// Tukey HSD / Tukey–Kramer test across all pairs of groups.
///
/// Pools the within-group variance (like the classical ANOVA it follows) and
/// compares `q_ij = |ȳ_i − ȳ_j| / √(MSE/2 · (1/n_i + 1/n_j))` against the
/// studentized range with `k` groups and `N − k` degrees of freedom.
pub fn tukey_hsd(groups: &[&[f64]]) -> Result<Vec<PairwiseComparison>> {
    let anova = one_way_anova(groups)?;
    let Some(mse) = anova.mean_square_error else {
        return Err(StatsError::degenerate("one_way_anova reported no MSE"));
    };
    if mse <= 0.0 {
        return Err(StatsError::degenerate("Tukey HSD requires positive within-group variance"));
    }
    let df = anova.df_within;
    let sr = StudentizedRange::new(groups.len(), df)?;
    let means: Vec<f64> = groups.iter().map(|g| mean(g)).collect::<Result<_>>()?;

    let mut out = Vec::new();
    for i in 0..groups.len() {
        for j in (i + 1)..groups.len() {
            let se = (mse / 2.0 * (1.0 / groups[i].len() as f64 + 1.0 / groups[j].len() as f64))
                .sqrt();
            let diff = means[i] - means[j];
            let q = diff.abs() / se;
            out.push(PairwiseComparison {
                group_a: i,
                group_b: j,
                difference: diff,
                statistic: q,
                p_value: sr.sf(q)?,
                df,
                std_error: se,
            });
        }
    }
    Ok(out)
}

/// Games–Howell test across all pairs of groups.
///
/// Uses per-pair standard errors from the individual group variances and a
/// Welch–Satterthwaite df per pair; the companion to Welch's ANOVA when
/// variances are unequal.
pub fn games_howell(groups: &[&[f64]]) -> Result<Vec<PairwiseComparison>> {
    crate::hypothesis::validate_groups(groups, 2, 2)?;
    let k = groups.len();
    let means: Vec<f64> = groups.iter().map(|g| mean(g)).collect::<Result<_>>()?;
    let vars: Vec<f64> = groups.iter().map(|g| variance(g)).collect::<Result<_>>()?;
    if vars.iter().any(|&v| v <= 0.0) {
        return Err(StatsError::degenerate(
            "Games-Howell requires positive variance in every group",
        ));
    }

    let mut out = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            let (ni, nj) = (groups[i].len() as f64, groups[j].len() as f64);
            let (vi, vj) = (vars[i] / ni, vars[j] / nj);
            let se2 = vi + vj;
            let df = se2 * se2 / (vi * vi / (ni - 1.0) + vj * vj / (nj - 1.0));
            let diff = means[i] - means[j];
            let se = (se2 / 2.0).sqrt();
            let q = diff.abs() / se;
            let sr = StudentizedRange::new(k, df)?;
            out.push(PairwiseComparison {
                group_a: i,
                group_b: j,
                difference: diff,
                statistic: q,
                p_value: sr.sf(q)?,
                df,
                std_error: se,
            });
        }
    }
    Ok(out)
}

/// Dunn's rank-sum test across all pairs of groups, with tie correction.
///
/// The rank-based companion to Kruskal–Wallis. `z_ij` compares mean ranks
/// against a normal reference; p-values are adjusted per `adjustment`.
pub fn dunn(groups: &[&[f64]], adjustment: Adjustment) -> Result<Vec<PairwiseComparison>> {
    if groups.len() < 2 {
        return Err(StatsError::degenerate("Dunn's test needs at least 2 groups"));
    }
    if groups.iter().any(|g| g.is_empty()) {
        return Err(StatsError::degenerate("Dunn's test requires non-empty groups"));
    }
    let pooled: Vec<f64> = groups.iter().flat_map(|g| g.iter().copied()).collect();
    let n = pooled.len() as f64;
    let all_ranks = ranks(&pooled);

    let mut mean_ranks = Vec::with_capacity(groups.len());
    let mut pos = 0;
    for g in groups {
        let sum: f64 = all_ranks[pos..pos + g.len()].iter().sum();
        pos += g.len();
        mean_ranks.push(sum / g.len() as f64);
    }

    let tie_sum: f64 = tie_group_sizes(&pooled)
        .iter()
        .map(|&t| {
            let t = t as f64;
            t * t * t - t
        })
        .sum();
    let tie_term = tie_sum / (12.0 * (n - 1.0));
    let base_var = n * (n + 1.0) / 12.0 - tie_term;
    if base_var <= 0.0 {
        return Err(StatsError::degenerate("all pooled observations are identical"));
    }

    let std = Normal::standard();
    let mut out = Vec::new();
    for i in 0..groups.len() {
        for j in (i + 1)..groups.len() {
            let se =
                (base_var * (1.0 / groups[i].len() as f64 + 1.0 / groups[j].len() as f64)).sqrt();
            let diff = mean_ranks[i] - mean_ranks[j];
            let z = diff / se;
            let p = 2.0 * std.sf(z.abs());
            out.push(PairwiseComparison {
                group_a: i,
                group_b: j,
                difference: diff,
                statistic: z,
                p_value: p.min(1.0),
                df: f64::INFINITY,
                std_error: se,
            });
        }
    }
    adjust_p_values(&mut out, adjustment);
    Ok(out)
}

/// Apply a multiple-comparison adjustment in place.
fn adjust_p_values(comparisons: &mut [PairwiseComparison], adjustment: Adjustment) {
    let m = comparisons.len() as f64;
    match adjustment {
        Adjustment::None => {}
        Adjustment::Bonferroni => {
            for c in comparisons.iter_mut() {
                c.p_value = (c.p_value * m).min(1.0);
            }
        }
        Adjustment::Holm => {
            // Step-down: sort ascending, multiply by (m − rank), enforce
            // monotonicity, and write back through the original order.
            let mut order: Vec<usize> = (0..comparisons.len()).collect();
            order.sort_by(|&a, &b| {
                comparisons[a].p_value.total_cmp(&comparisons[b].p_value)
            });
            let mut running_max = 0.0_f64;
            for (rank, &idx) in order.iter().enumerate() {
                let adjusted = (comparisons[idx].p_value * (m - rank as f64)).min(1.0);
                running_max = running_max.max(adjusted);
                comparisons[idx].p_value = running_max;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn tukey_q_statistic_matches_hand_computation() {
        // Equal-n case: q = |m_i - m_j| / sqrt(MSE / n).
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let c = [1.5, 2.5, 3.5];
        let pairs = tukey_hsd(&[&a, &b, &c]).unwrap();
        assert_eq!(pairs.len(), 3);
        // MSE = 1 (each group has variance 1), so q_ab = 3 / sqrt(1/3).
        let q_ab = pairs[0].statistic;
        close(q_ab, 3.0 / (1.0f64 / 3.0).sqrt(), 1e-9);
        close(pairs[0].difference, -3.0, 1e-12);
        close(pairs[0].df, 6.0, 1e-12);
    }

    #[test]
    fn tukey_p_at_table_critical_value_is_five_percent() {
        // Build 3 groups with pooled df = 10 whose largest q is forced to the
        // table critical value 3.877 by construction is fiddly; instead check
        // the distributional statement directly through the same code path.
        let sr = StudentizedRange::new(3, 10.0).unwrap();
        close(sr.sf(3.877).unwrap(), 0.05, 2e-3);
    }

    #[test]
    fn tukey_detects_separated_group() {
        let a = [10.0, 10.2, 9.8, 10.1, 9.9];
        let b = [10.1, 10.3, 9.9, 10.0, 10.2];
        let far = [20.0, 20.2, 19.8, 20.1, 19.9];
        let pairs = tukey_hsd(&[&a, &b, &far]).unwrap();
        let ab = &pairs[0];
        let a_far = &pairs[1];
        assert!(!ab.is_significant(0.05), "similar groups: p={}", ab.p_value);
        assert!(a_far.is_significant(0.001), "separated: p={}", a_far.p_value);
    }

    #[test]
    fn tukey_kramer_handles_unequal_sizes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 3.0];
        let c = [10.0, 11.0, 12.0];
        let pairs = tukey_hsd(&[&a, &b, &c]).unwrap();
        assert_eq!(pairs.len(), 3);
        for p in &pairs {
            assert!(p.p_value > 0.0 && p.p_value <= 1.0);
        }
    }

    #[test]
    fn games_howell_matches_independent_reference() {
        // q and the Welch-Satterthwaite df verified with an independent
        // pure-Python computation.
        let a = [6.9, 5.4, 5.8, 4.6, 4.0];
        let b = [8.3, 6.8, 7.8, 9.2, 6.5];
        let c = [8.0, 10.5, 8.1, 6.9, 9.3];
        let pairs = games_howell(&[&a, &b, &c]).unwrap();
        let ab = &pairs[0];
        close(ab.statistic, 4.793_673_992_339_03, 1e-9);
        close(ab.df, 7.998_734_940_809_78, 1e-9);
        assert!(ab.p_value > 0.0 && ab.p_value < 1.0);
    }

    #[test]
    fn games_howell_rejects_constant_group() {
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 3.0, 4.0];
        assert!(games_howell(&[&a, &b]).is_err());
    }

    #[test]
    fn dunn_matches_independent_reference() {
        let a = [1.0, 1.0, 2.0, 2.0, 3.0];
        let b = [3.0, 3.0, 4.0, 4.0, 5.0];
        let c = [5.0, 5.0, 6.0, 6.0, 7.0];
        let pairs = dunn(&[&a, &b, &c], Adjustment::None).unwrap();
        close(pairs[0].statistic, -1.715_536_561_379_75, 1e-9);
        close(pairs[0].p_value, 0.086_246_898_125_818_6, 1e-9);
        close(pairs[1].statistic, -3.431_073_122_759_5, 1e-9);
        close(pairs[1].p_value, 6.011_985_195_286_67e-4, 1e-10);
        close(pairs[2].statistic, -1.715_536_561_379_75, 1e-9);
    }

    #[test]
    fn dunn_bonferroni_scales_p() {
        let a = [1.0, 1.0, 2.0, 2.0, 3.0];
        let b = [3.0, 3.0, 4.0, 4.0, 5.0];
        let c = [5.0, 5.0, 6.0, 6.0, 7.0];
        let raw = dunn(&[&a, &b, &c], Adjustment::None).unwrap();
        let bonf = dunn(&[&a, &b, &c], Adjustment::Bonferroni).unwrap();
        for (r, b) in raw.iter().zip(&bonf) {
            close(b.p_value, (r.p_value * 3.0).min(1.0), 1e-12);
        }
    }

    #[test]
    fn dunn_holm_is_monotone_and_dominated_by_bonferroni() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [3.0, 4.0, 5.0, 6.0];
        let c = [8.0, 9.0, 10.0, 11.0];
        let holm = dunn(&[&a, &b, &c], Adjustment::Holm).unwrap();
        let bonf = dunn(&[&a, &b, &c], Adjustment::Bonferroni).unwrap();
        for (h, b) in holm.iter().zip(&bonf) {
            assert!(h.p_value <= b.p_value + 1e-12, "Holm must not exceed Bonferroni");
            assert!(h.p_value <= 1.0);
        }
    }

    #[test]
    fn tukey_confidence_intervals_bracket_the_difference() {
        let a = [10.0, 10.2, 9.8, 10.1, 9.9];
        let b = [10.1, 10.3, 9.9, 10.0, 10.2];
        let far = [20.0, 20.2, 19.8, 20.1, 19.9];
        let pairs = tukey_hsd(&[&a, &b, &far]).unwrap();
        for p in &pairs {
            let (lo, hi) = p.confidence_interval(3, 0.05).unwrap();
            assert!(lo < p.difference && p.difference < hi);
            // Significant at 0.05 ⟺ the 95% interval excludes zero (Tukey
            // duality).
            let excludes_zero = lo > 0.0 || hi < 0.0;
            assert_eq!(
                p.is_significant(0.05),
                excludes_zero,
                "pair ({},{}) p={} ci=({lo},{hi})",
                p.group_a,
                p.group_b,
                p.p_value
            );
        }
    }

    #[test]
    fn dunn_confidence_interval_uses_normal_quantile() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [8.0, 9.0, 10.0, 11.0];
        let pairs = dunn(&[&a, &b], Adjustment::None).unwrap();
        let p = &pairs[0];
        let (lo, hi) = p.confidence_interval(2, 0.05).unwrap();
        // Width = 2 × 1.96 × se.
        close(hi - lo, 2.0 * 1.959_963_984_540_054 * p.std_error, 1e-6);
        assert!(lo < p.difference && p.difference < hi);
    }

    #[test]
    fn dunn_rejects_degenerate_inputs() {
        let a = [1.0, 2.0];
        assert!(dunn(&[&a], Adjustment::None).is_err());
        let all_same = [3.0, 3.0];
        assert!(dunn(&[&all_same, &all_same], Adjustment::None).is_err());
        let empty: [f64; 0] = [];
        assert!(dunn(&[&a, &empty], Adjustment::None).is_err());
    }
}
