//! Streaming anomaly detectors.
//!
//! Two detectors power the paper's pipeline:
//!
//! - [`KSigma`] — the classical rolling mean ± k·σ band, used for the
//!   CDI-curve surveillance of Section VI-C (Cases 6 and 7). It flags both
//!   **spikes** and **dips**, mirroring the paper's lesson from Case 7 that
//!   dips deserve the same scrutiny as spikes.
//! - [`Spot`] — Streaming Peaks-Over-Threshold (Siffer et al., KDD'17): fits
//!   a Generalized Pareto tail to excesses over a high empirical quantile via
//!   Grimshaw's likelihood trick and converts a target risk `q` into a
//!   dynamic alarm threshold. Used by the statistical event extractor
//!   (Section II-C) on metric residuals.

use crate::describe::quantile;
use crate::dist::GeneralizedPareto;
use crate::error::{Result, StatsError};

/// Direction of a detected anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Value above the expected band — a stability degradation signal.
    Spike,
    /// Value below the expected band — either an improvement or, as in the
    /// paper's Case 7, a data-quality problem. Both deserve investigation.
    Dip,
}

/// A detected anomaly at an index of the input series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anomaly {
    /// Index into the observed series.
    pub index: usize,
    /// The observed value.
    pub value: f64,
    /// The band edge (threshold) the value crossed.
    pub threshold: f64,
    /// Spike or dip.
    pub kind: AnomalyKind,
}

/// Rolling K-Sigma detector.
///
/// Maintains mean and variance over a trailing window (excluding the current
/// point) and flags values outside `mean ± k·σ`. Flagged values are *not*
/// absorbed into the window, so a level shift keeps alarming until the
/// detector is reset — matching how the paper treats sustained CDI shifts.
#[derive(Debug, Clone)]
pub struct KSigma {
    k: f64,
    window: usize,
    min_sigma: f64,
    history: Vec<f64>,
}

impl KSigma {
    /// Create a detector with band half-width `k` standard deviations and the
    /// given rolling window length (`window >= 3`).
    ///
    /// `min_sigma` puts a floor under the estimated σ so that near-constant
    /// healthy series (common for per-event CDI curves that sit at ~0) do not
    /// alarm on noise; use 0.0 to disable.
    pub fn new(k: f64, window: usize, min_sigma: f64) -> Result<Self> {
        if k <= 0.0 {
            return Err(StatsError::invalid(format!("k must be positive, got {k}")));
        }
        if window < 3 {
            return Err(StatsError::invalid(format!("window must be >= 3, got {window}")));
        }
        if min_sigma < 0.0 {
            return Err(StatsError::invalid("min_sigma must be non-negative"));
        }
        Ok(KSigma { k, window, min_sigma, history: Vec::new() })
    }

    /// Observe one value; returns the anomaly if it falls outside the band.
    ///
    /// The first `window` observations are used purely for calibration and
    /// never flagged.
    pub fn observe(&mut self, index: usize, value: f64) -> Option<Anomaly> {
        if self.history.len() < self.window {
            self.history.push(value);
            return None;
        }
        let tail = &self.history[self.history.len() - self.window..];
        let mean = tail.iter().sum::<f64>() / self.window as f64;
        let var = tail.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (self.window - 1) as f64;
        let sigma = var.sqrt().max(self.min_sigma);
        let hi = mean + self.k * sigma;
        let lo = mean - self.k * sigma;
        if value > hi {
            Some(Anomaly { index, value, threshold: hi, kind: AnomalyKind::Spike })
        } else if value < lo {
            Some(Anomaly { index, value, threshold: lo, kind: AnomalyKind::Dip })
        } else {
            self.history.push(value);
            None
        }
    }

    /// Run the detector over a whole series, returning all anomalies.
    pub fn detect(mut self, series: &[f64]) -> Vec<Anomaly> {
        series
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| self.observe(i, v))
            .collect()
    }
}

/// Fitted tail state of a [`Spot`] detector.
#[derive(Debug, Clone, Copy)]
struct TailFit {
    /// The initial (peaks-over) threshold `t`.
    t: f64,
    /// Fitted GPD over excesses above `t`.
    gpd: GeneralizedPareto,
    /// Number of excesses used in the fit.
    n_peaks: usize,
    /// Total observations seen at fit time.
    n_total: usize,
}

/// Streaming Peaks-Over-Threshold detector (upper tail).
///
/// Calibrate with [`Spot::fit`], then stream values through
/// [`Spot::observe`]. Values above the dynamic threshold `z_q` are anomalies;
/// values between `t` and `z_q` update the tail fit.
#[derive(Debug, Clone)]
pub struct Spot {
    /// Target risk: the tolerated probability of exceeding the threshold.
    q: f64,
    /// Initial-threshold quantile level used at calibration (e.g. 0.98).
    init_level: f64,
    fit: Option<TailFit>,
    /// Excesses over `t` retained for refits.
    peaks: Vec<f64>,
    /// Current dynamic threshold.
    z_q: f64,
}

impl Spot {
    /// Create an uncalibrated SPOT detector with target risk `q`
    /// (e.g. `1e-4`) and initial-threshold quantile `init_level ∈ (0.5, 1)`.
    pub fn new(q: f64, init_level: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&q) || q <= 0.0 {
            return Err(StatsError::invalid(format!("risk q must be in (0,1), got {q}")));
        }
        if !(0.5..1.0).contains(&init_level) {
            return Err(StatsError::invalid(format!(
                "init_level must be in [0.5, 1), got {init_level}"
            )));
        }
        Ok(Spot { q, init_level, fit: None, peaks: Vec::new(), z_q: f64::INFINITY })
    }

    /// Calibrate on an initial batch (needs enough points above the initial
    /// threshold to fit a tail — at least 10 excesses).
    pub fn fit(&mut self, calibration: &[f64]) -> Result<()> {
        if calibration.len() < 20 {
            return Err(StatsError::degenerate(format!(
                "SPOT calibration needs >= 20 points, got {}",
                calibration.len()
            )));
        }
        let t = quantile(calibration, self.init_level)?;
        let peaks: Vec<f64> = calibration.iter().filter(|&&x| x > t).map(|x| x - t).collect();
        if peaks.len() < 10 {
            return Err(StatsError::degenerate(format!(
                "SPOT needs >= 10 excesses over the initial threshold, got {}",
                peaks.len()
            )));
        }
        let gpd = grimshaw_fit(&peaks)?;
        self.peaks = peaks;
        self.fit = Some(TailFit { t, gpd, n_peaks: self.peaks.len(), n_total: calibration.len() });
        self.update_threshold();
        Ok(())
    }

    /// The current dynamic alarm threshold `z_q` (infinite until fitted).
    pub fn threshold(&self) -> f64 {
        self.z_q
    }

    /// Observe one streaming value.
    ///
    /// Returns `Some(anomaly)` if the value exceeds `z_q`. Values between the
    /// peaks threshold and `z_q` are folded into the tail model (refitting
    /// the GPD); anomalous values do not pollute the model.
    pub fn observe(&mut self, index: usize, value: f64) -> Result<Option<Anomaly>> {
        let fit = self
            .fit
            .as_mut()
            .ok_or_else(|| StatsError::degenerate("SPOT must be fitted before observing"))?;
        fit.n_total += 1;
        if value > self.z_q {
            return Ok(Some(Anomaly {
                index,
                value,
                threshold: self.z_q,
                kind: AnomalyKind::Spike,
            }));
        }
        if value > fit.t {
            self.peaks.push(value - fit.t);
            fit.n_peaks += 1;
            fit.gpd = grimshaw_fit(&self.peaks)?;
            self.update_threshold();
        }
        Ok(None)
    }

    /// Recompute `z_q = t + (σ/γ)·((q·n/N_t)^{−γ} − 1)` from the current fit.
    fn update_threshold(&mut self) {
        // Called only after `fit` is populated; a stray early call leaves
        // the previous threshold in place instead of panicking.
        let Some(fit) = self.fit.as_ref() else { return };
        let r = self.q * fit.n_total as f64 / fit.n_peaks as f64;
        let (sigma, gamma) = (fit.gpd.sigma(), fit.gpd.xi());
        self.z_q = if gamma.abs() < 1e-12 {
            fit.t - sigma * r.ln()
        } else {
            fit.t + sigma / gamma * (r.powf(-gamma) - 1.0)
        };
    }
}

/// Fit a GPD to excesses via Grimshaw's reduction: all likelihood stationary
/// points satisfy `u(x)·v(x) = 1` for a scalar `x`, where
/// `u(x) = mean(1/(1+x·yᵢ))` and `v(x) = 1 + mean(log(1+x·yᵢ))`; then
/// `γ = v(x*) − 1`, `σ = γ/x*`. The exponential limit (`x → 0`) is always
/// included as a candidate and the best log-likelihood wins.
pub fn grimshaw_fit(excesses: &[f64]) -> Result<GeneralizedPareto> {
    if excesses.len() < 2 {
        return Err(StatsError::degenerate("GPD fit needs >= 2 excesses"));
    }
    if excesses.iter().any(|&y| y <= 0.0 || !y.is_finite()) {
        return Err(StatsError::invalid("excesses must be positive and finite"));
    }
    let y_max = excesses.iter().cloned().fold(f64::MIN, f64::max);
    let y_mean = excesses.iter().sum::<f64>() / excesses.len() as f64;

    let w = |x: f64| -> f64 {
        let mut u = 0.0;
        let mut v = 0.0;
        for &y in excesses {
            let s = 1.0 + x * y;
            u += 1.0 / s;
            v += s.ln();
        }
        let n = excesses.len() as f64;
        (u / n) * (1.0 + v / n) - 1.0
    };

    // Candidate x* values: the exponential limit plus roots of w on the
    // negative branch (-1/y_max, 0) and the positive branch (0, x_hi).
    let mut candidates: Vec<(f64, f64)> = Vec::new(); // (sigma, gamma)
    candidates.push((y_mean, 0.0));

    let eps = 1e-8 / y_mean;
    let lo_neg = -1.0 / y_max + 1e-9 / y_max.max(1.0);
    let mut brackets = Vec::new();
    scan_roots(&w, lo_neg, -eps, 60, &mut brackets);
    scan_roots(&w, eps, 20.0 / y_mean, 60, &mut brackets);
    for (a, b) in brackets {
        if let Some(x) = bisect_root(&w, a, b) {
            let mut v = 0.0;
            for &y in excesses {
                v += (1.0 + x * y).ln();
            }
            let gamma = v / excesses.len() as f64;
            let sigma = gamma / x;
            if sigma > 0.0 && sigma.is_finite() {
                candidates.push((sigma, gamma));
            }
        }
    }

    let mut best: Option<(f64, GeneralizedPareto)> = None;
    for (sigma, gamma) in candidates {
        if let Ok(gpd) = GeneralizedPareto::new(sigma, gamma) {
            let ll = gpd.log_likelihood(excesses);
            if ll.is_finite() && best.as_ref().is_none_or(|(b, _)| ll > *b) {
                best = Some((ll, gpd));
            }
        }
    }
    best.map(|(_, g)| g)
        .ok_or_else(|| StatsError::NotConverged("no valid GPD candidate".into()))
}

/// Scan `[a, b]` in `n` steps and record sign-change brackets of `f`.
fn scan_roots(f: &impl Fn(f64) -> f64, a: f64, b: f64, n: usize, out: &mut Vec<(f64, f64)>) {
    if a >= b {
        return;
    }
    let h = (b - a) / n as f64;
    let mut x0 = a;
    let mut f0 = f(x0);
    for i in 1..=n {
        let x1 = a + i as f64 * h;
        let f1 = f(x1);
        if f0.is_finite() && f1.is_finite() && f0 * f1 < 0.0 {
            out.push((x0, x1));
        }
        x0 = x1;
        f0 = f1;
    }
}

/// Bisection root refinement on a sign-change bracket.
fn bisect_root(f: &impl Fn(f64) -> f64, mut a: f64, mut b: f64) -> Option<f64> {
    let mut fa = f(a);
    for _ in 0..100 {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if !fm.is_finite() {
            return None;
        }
        if fa * fm <= 0.0 {
            b = m;
        } else {
            a = m;
            fa = fm;
        }
        if (b - a).abs() < 1e-14 * (1.0 + a.abs()) {
            break;
        }
    }
    Some(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [-0.5, 0.5) from a splitmix-style hash.
    fn noise(i: u64) -> f64 {
        let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z as f64 / u64::MAX as f64) - 0.5
    }

    #[test]
    fn ksigma_flags_spike_and_dip() {
        let mut series: Vec<f64> = (0..60).map(|i| 10.0 + noise(i)).collect();
        series[40] = 25.0; // spike
        series[50] = -5.0; // dip
        let det = KSigma::new(4.0, 20, 0.0).unwrap();
        let anomalies = det.detect(&series);
        let kinds: Vec<(usize, AnomalyKind)> =
            anomalies.iter().map(|a| (a.index, a.kind)).collect();
        assert!(kinds.contains(&(40, AnomalyKind::Spike)), "{kinds:?}");
        assert!(kinds.contains(&(50, AnomalyKind::Dip)), "{kinds:?}");
        assert_eq!(anomalies.len(), 2, "{anomalies:?}");
    }

    #[test]
    fn ksigma_quiet_series_is_quiet() {
        let series: Vec<f64> = (0..200).map(|i| 5.0 + 0.1 * noise(i)).collect();
        let det = KSigma::new(5.0, 30, 0.0).unwrap();
        assert!(det.detect(&series).is_empty());
    }

    #[test]
    fn ksigma_min_sigma_suppresses_flat_series_noise() {
        // A series that is exactly constant during calibration, then moves a
        // hair: without a sigma floor that would alarm, with it it must not.
        let mut series = vec![1.0; 30];
        series.push(1.001);
        let strict = KSigma::new(3.0, 30, 0.0).unwrap();
        assert_eq!(strict.detect(&series).len(), 1);
        let floored = KSigma::new(3.0, 30, 0.01).unwrap();
        assert!(floored.detect(&series).is_empty());
    }

    #[test]
    fn ksigma_sustained_shift_keeps_alarming() {
        let mut series: Vec<f64> = (0..30).map(|i| 10.0 + noise(i)).collect();
        series.extend((30..40).map(|i| 30.0 + noise(i)));
        let det = KSigma::new(4.0, 30, 0.0).unwrap();
        let anomalies = det.detect(&series);
        assert_eq!(anomalies.len(), 10, "every post-shift point alarms");
    }

    #[test]
    fn ksigma_rejects_bad_params() {
        assert!(KSigma::new(0.0, 10, 0.0).is_err());
        assert!(KSigma::new(3.0, 2, 0.0).is_err());
        assert!(KSigma::new(3.0, 10, -1.0).is_err());
    }

    #[test]
    fn grimshaw_recovers_exponential_scale() {
        // Deterministic Exp(scale=2) sample via inverse CDF at plotting
        // positions.
        let n = 400;
        let sample: Vec<f64> =
            (1..=n).map(|i| -2.0 * (1.0 - i as f64 / (n + 1) as f64).ln()).collect();
        let gpd = grimshaw_fit(&sample).unwrap();
        assert!((gpd.sigma() - 2.0).abs() < 0.15, "sigma={}", gpd.sigma());
        assert!(gpd.xi().abs() < 0.08, "xi={}", gpd.xi());
    }

    #[test]
    fn grimshaw_recovers_heavy_tail_shape() {
        // GPD(sigma=1, xi=0.4) quantile sample.
        let n = 600;
        let truth = GeneralizedPareto::new(1.0, 0.4).unwrap();
        let sample: Vec<f64> =
            (1..=n).map(|i| truth.quantile(i as f64 / (n + 1) as f64).unwrap()).collect();
        let gpd = grimshaw_fit(&sample).unwrap();
        assert!((gpd.xi() - 0.4).abs() < 0.1, "xi={}", gpd.xi());
        assert!((gpd.sigma() - 1.0).abs() < 0.15, "sigma={}", gpd.sigma());
    }

    #[test]
    fn grimshaw_rejects_bad_input() {
        assert!(grimshaw_fit(&[1.0]).is_err());
        assert!(grimshaw_fit(&[1.0, -2.0]).is_err());
        assert!(grimshaw_fit(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn spot_flags_extremes_but_not_ordinary_tail() {
        // Calibrate on exponential-ish noise, then stream: moderate values
        // pass, an extreme one alarms.
        let calib: Vec<f64> =
            (0..300).map(|i| -((0.5 + noise(i).abs()).ln()) + noise(i * 7).abs()).collect();
        let mut spot = Spot::new(1e-4, 0.95).unwrap();
        spot.fit(&calib).unwrap();
        let z = spot.threshold();
        assert!(z.is_finite() && z > 0.0);
        // A value just above the peaks threshold but below z_q: no alarm.
        assert!(spot.observe(0, z * 0.9).unwrap().is_none());
        // A value far beyond: alarm.
        let a = spot.observe(1, z * 3.0).unwrap().expect("should alarm");
        assert_eq!(a.kind, AnomalyKind::Spike);
    }

    #[test]
    fn spot_threshold_exceeds_initial_quantile() {
        let calib: Vec<f64> = (0..500).map(|i| noise(i).abs() * 2.0).collect();
        let mut spot = Spot::new(1e-3, 0.9).unwrap();
        spot.fit(&calib).unwrap();
        let t = quantile(&calib, 0.9).unwrap();
        assert!(spot.threshold() > t, "z_q={} t={t}", spot.threshold());
    }

    #[test]
    fn spot_requires_fit_before_observe() {
        let mut spot = Spot::new(1e-3, 0.9).unwrap();
        assert!(spot.observe(0, 1.0).is_err());
        assert!(spot.threshold().is_infinite());
    }

    #[test]
    fn spot_rejects_bad_params_and_tiny_calibration() {
        assert!(Spot::new(0.0, 0.9).is_err());
        assert!(Spot::new(1e-3, 0.3).is_err());
        assert!(Spot::new(1e-3, 1.0).is_err());
        let mut spot = Spot::new(1e-3, 0.9).unwrap();
        assert!(spot.fit(&[1.0; 5]).is_err());
    }
}
