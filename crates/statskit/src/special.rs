//! Special functions: log-gamma, error function, and the regularized
//! incomplete gamma and beta functions.
//!
//! These follow the classic Lanczos / Lentz continued-fraction constructions
//! (Numerical Recipes style) and target absolute error below `1e-12` over the
//! parameter ranges exercised by the hypothesis tests in this crate. Every
//! distribution in [`crate::dist`] bottoms out here.

use crate::error::{Result, StatsError};

/// Machine-epsilon-scale convergence threshold for the continued fractions.
const EPS: f64 = 1e-15;
/// A tiny value standing in for zero inside Lentz's algorithm.
const FPMIN: f64 = 1e-300;
/// Iteration budget for series / continued-fraction evaluation.
const MAX_ITER: usize = 500;

/// Lanczos coefficients (g = 7, n = 9).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection handled by the caller
/// (negative arguments are rejected: the statistics in this crate only ever
/// need the positive real axis).
///
/// # Examples
/// ```
/// use statskit::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Γ(x) = Γ(x+1)/x keeps the Lanczos sum well-conditioned for small x.
    if x < 0.5 {
        return ln_gamma(x + 1.0) - x.ln();
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The error function `erf(x)`.
///
/// Built on the regularized incomplete gamma function:
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    // `P(1/2, x²)` is defined for every finite x; a NaN input (the only
    // way the call can fail) propagates as NaN rather than a panic.
    let p = reg_gamma_p(0.5, x * x).unwrap_or(f64::NAN);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Computed directly from `Q(1/2, x²)` for positive `x` to retain precision
/// deep in the tail (where `1 - erf(x)` would catastrophically cancel).
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    // As in `erf`: only a NaN input can fail, and NaN-in/NaN-out beats a
    // panic in a library crate.
    let q = reg_gamma_q(0.5, x * x).unwrap_or(f64::NAN);
    if x > 0.0 {
        q
    } else {
        2.0 - q
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, ·)` is the CDF of the Gamma(shape = a, scale = 1) distribution; the
/// chi-squared CDF in [`crate::dist`] is a thin wrapper over it.
pub fn reg_gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 {
        return Err(StatsError::invalid(format!("gamma shape a must be > 0, got {a}")));
    }
    if x < 0.0 {
        return Err(StatsError::invalid(format!("gamma argument x must be >= 0, got {x}")));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_contfrac(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn reg_gamma_q(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 {
        return Err(StatsError::invalid(format!("gamma shape a must be > 0, got {a}")));
    }
    if x < 0.0 {
        return Err(StatsError::invalid(format!("gamma argument x must be >= 0, got {x}")));
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_p_series(a, x)?)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series expansion of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            let log_prefix = a * x.ln() - x - ln_gamma(a);
            return Ok((sum * log_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NotConverged(format!("gamma series P({a}, {x})")))
}

/// Lentz continued fraction for `Q(a, x)`, convergent for `x >= a + 1`.
fn gamma_q_contfrac(a: f64, x: f64) -> Result<f64> {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            let log_prefix = a * x.ln() - x - ln_gamma(a);
            return Ok((h * log_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(StatsError::NotConverged(format!("gamma continued fraction Q({a}, {x})")))
}

/// Natural log of the complete beta function, `ln B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// This is the CDF of the Beta(a, b) distribution and underlies the Student-t
/// and F distributions used throughout the hypothesis-testing modules.
pub fn reg_beta(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || b <= 0.0 {
        return Err(StatsError::invalid(format!(
            "beta parameters must be > 0, got a={a}, b={b}"
        )));
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::invalid(format!("beta argument must be in [0,1], got {x}")));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let log_prefix = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    // Use the continued fraction on whichever side converges fastest and
    // exploit the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) on the other.
    let result = if x < (a + 1.0) / (a + b + 2.0) {
        log_prefix.exp() * beta_contfrac(a, b, x)? / a
    } else {
        1.0 - log_prefix.exp() * beta_contfrac(b, a, 1.0 - x)? / b
    };
    Ok(result.clamp(0.0, 1.0))
}

/// Lentz continued fraction for the incomplete beta function.
fn beta_contfrac(a: f64, b: f64, x: f64) -> Result<f64> {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NotConverged(format!("beta continued fraction I_{x}({a}, {b})")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a} (diff {})", (a - b).abs());
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..=15 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12);
        // Γ(3/2) = √π / 2
        close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun / scipy.special.erf.
        close(erf(0.5), 0.520_499_877_813_046_5, 1e-10);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
        assert_eq!(erf(0.0), 0.0);
    }

    #[test]
    fn erfc_deep_tail_precision() {
        // scipy.special.erfc(5) = 1.5374597944280347e-12 — a naive 1 - erf(5)
        // loses every significant digit here.
        close(erfc(5.0) / 1.537_459_794_428_034_7e-12, 1.0, 1e-6);
        close(erfc(-1.0), 1.842_700_792_949_715, 1e-10);
    }

    #[test]
    fn erf_erfc_complementarity() {
        for &x in &[-3.0, -1.2, -0.1, 0.0, 0.7, 2.5, 4.0] {
            close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.3, 0.5, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1, 0.9, 1.0, 3.0, 12.0, 60.0] {
                let p = reg_gamma_p(a, x).unwrap();
                let q = reg_gamma_q(a, x).unwrap();
                close(p + q, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 1.0, 2.0, 5.0] {
            close(reg_gamma_p(1.0, x).unwrap(), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn gamma_rejects_bad_args() {
        assert!(reg_gamma_p(-1.0, 1.0).is_err());
        assert!(reg_gamma_p(1.0, -1.0).is_err());
        assert!(reg_gamma_q(0.0, 1.0).is_err());
    }

    #[test]
    fn reg_beta_reference_values() {
        // scipy.special.betainc reference points.
        close(reg_beta(2.0, 3.0, 0.4).unwrap(), 0.5248, 1e-10);
        close(reg_beta(0.5, 0.5, 0.5).unwrap(), 0.5, 1e-10);
        close(reg_beta(5.0, 1.0, 0.9).unwrap(), 0.9_f64.powi(5), 1e-10);
        close(reg_beta(1.0, 1.0, 0.37).unwrap(), 0.37, 1e-12);
    }

    #[test]
    fn reg_beta_boundaries_and_symmetry() {
        assert_eq!(reg_beta(2.0, 5.0, 0.0).unwrap(), 0.0);
        assert_eq!(reg_beta(2.0, 5.0, 1.0).unwrap(), 1.0);
        for &(a, b, x) in &[(2.0, 3.0, 0.25), (0.7, 4.2, 0.8), (10.0, 10.0, 0.5)] {
            let lhs = reg_beta(a, b, x).unwrap();
            let rhs = 1.0 - reg_beta(b, a, 1.0 - x).unwrap();
            close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn reg_beta_rejects_bad_args() {
        assert!(reg_beta(0.0, 1.0, 0.5).is_err());
        assert!(reg_beta(1.0, -2.0, 0.5).is_err());
        assert!(reg_beta(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn ln_beta_symmetry() {
        close(ln_beta(2.5, 4.0), ln_beta(4.0, 2.5), 1e-14);
        // B(1, 1) = 1.
        close(ln_beta(1.0, 1.0), 0.0, 1e-14);
    }
}
