//! Property-based tests for the statistics toolkit: distribution
//! round-trips, p-value domains, rank invariants, adjustment dominance, and
//! fit robustness.

use proptest::prelude::*;
use statskit::ahp::JudgmentMatrix;
use statskit::anomaly::grimshaw_fit;
use statskit::describe::{moving_average, ranks};
use statskit::dist::{ChiSquared, FisherF, GeneralizedPareto, Normal, StudentT};
use statskit::hypothesis::{kruskal_wallis, levene, one_way_anova, welch_anova, Center};
use statskit::posthoc::{dunn, Adjustment};
use statskit::trend::mann_kendall;

proptest! {
    /// quantile(cdf) round-trips for every closed-form distribution.
    #[test]
    fn distribution_quantile_round_trips(
        p in 0.001f64..0.999,
        df in 1.0f64..50.0,
        d2 in 1.0f64..50.0,
        mu in -5.0f64..5.0,
        sigma in 0.1f64..10.0,
    ) {
        let n = Normal::new(mu, sigma).unwrap();
        prop_assert!((n.cdf(n.quantile(p).unwrap()) - p).abs() < 1e-9);
        let c = ChiSquared::new(df).unwrap();
        prop_assert!((c.cdf(c.quantile(p).unwrap()).unwrap() - p).abs() < 1e-7);
        let t = StudentT::new(df).unwrap();
        prop_assert!((t.cdf(t.quantile(p).unwrap()).unwrap() - p).abs() < 1e-7);
        let f = FisherF::new(df, d2).unwrap();
        prop_assert!((f.cdf(f.quantile(p).unwrap()).unwrap() - p).abs() < 1e-7);
    }

    /// CDFs are monotone nondecreasing.
    #[test]
    fn cdfs_are_monotone(df in 1.0f64..40.0, a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let t = StudentT::new(df).unwrap();
        prop_assert!(t.cdf(lo).unwrap() <= t.cdf(hi).unwrap() + 1e-12);
        let n = Normal::standard();
        prop_assert!(n.cdf(lo) <= n.cdf(hi) + 1e-12);
    }

    /// GPD cdf/quantile round-trip across the shape range.
    #[test]
    fn gpd_round_trips(sigma in 0.1f64..10.0, xi in -0.9f64..2.0, p in 0.01f64..0.99) {
        let g = GeneralizedPareto::new(sigma, xi).unwrap();
        let x = g.quantile(p).unwrap();
        prop_assert!((g.cdf(x) - p).abs() < 1e-9);
    }

    /// Omnibus tests produce p-values in [0,1] (or a clean error) on
    /// arbitrary group data — never panics, never NaN.
    #[test]
    fn omnibus_p_values_in_unit_interval(
        groups in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 3..20),
            2..5
        )
    ) {
        let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
        if let Ok(r) = one_way_anova(&refs) {
            prop_assert!((0.0..=1.0).contains(&r.p_value), "anova p = {}", r.p_value);
        }
        if let Ok(r) = welch_anova(&refs) {
            prop_assert!((0.0..=1.0).contains(&r.p_value), "welch p = {}", r.p_value);
        }
        if let Ok(r) = kruskal_wallis(&refs) {
            prop_assert!((0.0..=1.0).contains(&r.p_value), "kw p = {}", r.p_value);
        }
        if let Ok(r) = levene(&refs, Center::Median) {
            prop_assert!((0.0..=1.0).contains(&r.p_value), "levene p = {}", r.p_value);
        }
    }

    /// Rank sums equal n(n+1)/2 and midranks stay within [1, n].
    #[test]
    fn rank_invariants(data in prop::collection::vec(-50.0f64..50.0, 1..60)) {
        let r = ranks(&data);
        let n = data.len() as f64;
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-9);
        prop_assert!(r.iter().all(|&x| (1.0..=n).contains(&x)));
    }

    /// Holm never exceeds Bonferroni, and both stay in [0, 1].
    #[test]
    fn holm_dominated_by_bonferroni(
        groups in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 3..12),
            3..5
        )
    ) {
        let refs: Vec<&[f64]> = groups.iter().map(|g| g.as_slice()).collect();
        let holm = dunn(&refs, Adjustment::Holm);
        let bonf = dunn(&refs, Adjustment::Bonferroni);
        if let (Ok(h), Ok(b)) = (holm, bonf) {
            for (x, y) in h.iter().zip(&b) {
                prop_assert!(x.p_value <= y.p_value + 1e-12);
                prop_assert!((0.0..=1.0).contains(&x.p_value));
            }
        }
    }

    /// AHP priorities from any reciprocal matrix are a probability vector.
    #[test]
    fn ahp_priorities_are_probabilities(upper in prop::collection::vec(0.2f64..5.0, 3)) {
        let m = JudgmentMatrix::from_upper_triangle(3, &upper).unwrap();
        let r = m.priorities().unwrap();
        let sum: f64 = r.priorities.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(r.priorities.iter().all(|&p| p > 0.0));
        prop_assert!(r.lambda_max >= 3.0 - 1e-6, "λmax {} >= n", r.lambda_max);
    }

    /// Grimshaw's GPD fit never does worse than the exponential fallback in
    /// log-likelihood (the fallback is always a candidate).
    #[test]
    fn grimshaw_at_least_exponential(data in prop::collection::vec(0.01f64..20.0, 10..80)) {
        let fit = grimshaw_fit(&data).unwrap();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let expo = GeneralizedPareto::new(mean, 0.0).unwrap();
        prop_assert!(
            fit.log_likelihood(&data) >= expo.log_likelihood(&data) - 1e-9,
            "fit LL {} < exponential LL {}",
            fit.log_likelihood(&data),
            expo.log_likelihood(&data)
        );
    }

    /// Mann-Kendall: p in [0,1]; reversing the series negates S and keeps p.
    #[test]
    fn mann_kendall_symmetry(data in prop::collection::vec(-10.0f64..10.0, 4..40)) {
        let fwd = mann_kendall(&data).unwrap();
        prop_assert!((0.0..=1.0).contains(&fwd.p_value));
        let mut rev = data.clone();
        rev.reverse();
        let bwd = mann_kendall(&rev).unwrap();
        prop_assert_eq!(fwd.s, -bwd.s);
        prop_assert!((fwd.p_value - bwd.p_value).abs() < 1e-12);
    }

    /// Moving averages stay inside the data's range and preserve length.
    #[test]
    fn moving_average_bounds(
        data in prop::collection::vec(-100.0f64..100.0, 1..50),
        window in 1usize..20
    ) {
        let ma = moving_average(&data, window);
        prop_assert_eq!(ma.len(), data.len());
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(ma.iter().all(|&x| x >= lo - 1e-9 && x <= hi + 1e-9));
    }
}
