//! # simfleet — a deterministic cloud-fleet simulator
//!
//! The paper evaluates CDI on Alibaba Cloud's production fleet (>1M physical
//! servers, tens of millions of VMs) — data we cannot have. This crate is
//! the substitution (DESIGN.md §1): a seeded, fully deterministic simulator
//! that produces the same *kinds* of raw signals CloudBot consumes —
//! metrics, logs, customer tickets, control-plane operation outcomes — from
//! a topology of regions, availability zones, clusters, node controllers
//! (NCs) and VMs, under injected faults with known ground truth.
//!
//! Determinism is load-bearing: every experiment in `crates/bench` fixes a
//! seed, so each paper figure is regenerated bit-identically, and tests can
//! assert against known injected damage — something the paper itself cannot
//! do with production data.
//!
//! - [`topology`] — the fleet model, including dedicated/shared VM types and
//!   the homogeneous/hybrid deployment architectures of Fig. 7.
//! - [`telemetry`] — per-target metric series with daily seasonality, noise,
//!   and fault-driven distortions.
//! - [`faults`] — the injectable fault library with per-fault ground truth
//!   (category, affected metrics, expected events).
//! - [`changes`] — gradual change-release rollouts that can carry a defect
//!   (Case 1 / Case 6 style regressions).
//! - [`chaos`] — seeded malformed-telemetry injection (unknown names,
//!   inverted spans, duplicates, late arrivals) for exercising the
//!   pipeline's quarantine and retry paths.
//! - [`tickets`] — customer tickets generated from experienced damage with
//!   per-category report propensities (drives Fig. 2 and Eq. 2 weights).
//! - [`world`] — ties everything together: the queryable `SimWorld`.
//! - [`scenario`] — pre-built worlds for each paper experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod changes;
pub mod chaos;
pub mod faults;
pub mod scenario;
pub mod telemetry;
pub mod tickets;
pub mod topology;
pub mod world;

pub use chaos::{ChaosConfig, ChaosEvent, ChaosKind};
pub use faults::{FaultInjection, FaultKind};
pub use topology::{DeploymentArch, Fleet, FleetConfig, NcId, Scope, VmId, VmType};
pub use world::{LogLine, SimWorld};
