//! Metric-series generation: deterministic baselines with daily seasonality
//! plus fault-driven distortions.
//!
//! Values are pure functions of `(seed, target, metric, timestamp)` — no
//! stored state — so any time range can be queried lazily at any resolution
//! and experiments re-generate identical series from a fixed seed.

use serde::{Deserialize, Serialize};

use crate::faults::FaultKind;

/// Metrics the simulated collector can sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Cloud-disk read latency (ms) — the paper's running example.
    ReadLatencyMs,
    /// Network packet loss (percent).
    PacketLossPct,
    /// CPU steal fraction (0..1) — contention signal for Case 5.
    CpuSteal,
    /// NC power draw (watts) — Case 7's TDP inspection input.
    PowerWatts,
    /// Liveness: 1.0 when the target responds, 0.0 when down.
    Heartbeat,
    /// GPU health: 1.0 healthy, 0.0 dropped off the bus.
    GpuHealth,
}

impl Metric {
    /// All metrics.
    pub const ALL: [Metric; 6] = [
        Metric::ReadLatencyMs,
        Metric::PacketLossPct,
        Metric::CpuSteal,
        Metric::PowerWatts,
        Metric::Heartbeat,
        Metric::GpuHealth,
    ];
}

/// SplitMix64 — the deterministic noise generator.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform noise in `[-0.5, 0.5)` from the tuple `(seed, target, metric, t)`.
pub fn noise(seed: u64, target: u64, metric: Metric, t: i64) -> f64 {
    let mixed = splitmix(
        seed ^ splitmix(target) ^ splitmix(metric as u64 + 1) ^ splitmix(t as u64),
    );
    (mixed as f64 / u64::MAX as f64) - 0.5
}

/// Uniform sample in `[0, 1)` — used for probabilistic decisions (tickets,
/// sporadic failures) that must stay reproducible.
pub fn unit(seed: u64, salt: u64, t: i64) -> f64 {
    noise(seed, salt, Metric::Heartbeat, t) + 0.5
}

const DAY_MS: f64 = 86_400_000.0;

/// Daily seasonal factor in `[-1, 1]` peaking in the (simulated) evening.
pub fn seasonal(t: i64) -> f64 {
    let phase = (t as f64 % DAY_MS) / DAY_MS;
    (2.0 * std::f64::consts::PI * (phase - 0.25)).sin()
}

/// Healthy baseline value of a metric at time `t`.
pub fn baseline(metric: Metric, seed: u64, target: u64, t: i64) -> f64 {
    let n = noise(seed, target, metric, t);
    match metric {
        Metric::ReadLatencyMs => 2.0 + 0.4 * seasonal(t) + 0.2 * n,
        Metric::PacketLossPct => (0.01 + 0.02 * n.abs()).max(0.0),
        Metric::CpuSteal => (0.005 + 0.01 * n.abs() + 0.002 * seasonal(t).max(0.0)).max(0.0),
        Metric::PowerWatts => 300.0 + 60.0 * seasonal(t) + 5.0 * n,
        Metric::Heartbeat => 1.0,
        Metric::GpuHealth => 1.0,
    }
}

/// Distort a metric value under an active fault. Faults not touching this
/// metric return the value unchanged.
pub fn apply_fault(metric: Metric, value: f64, fault: &FaultKind) -> f64 {
    match (metric, fault) {
        (Metric::ReadLatencyMs, FaultKind::SlowIo { factor }) => value * factor,
        // Cloud disks are network-attached: a flapping NIC stalls IO far
        // beyond the slow-io threshold (the paper's Fig. 1 story).
        (Metric::ReadLatencyMs, FaultKind::NicFlapping) => value * 6.0,
        (Metric::PacketLossPct, FaultKind::PacketLoss { rate }) => value + rate * 100.0,
        (Metric::PacketLossPct, FaultKind::NicFlapping) => value + 5.0,
        (Metric::PacketLossPct, FaultKind::DdosBlackhole) => 100.0,
        (Metric::CpuSteal, FaultKind::CpuContention { steal }) => (value + steal).min(1.0),
        (Metric::CpuSteal, FaultKind::SchedulerDataCorruption) => (value + 0.3).min(1.0),
        (Metric::PowerWatts, FaultKind::PowerZeroBug) => 0.0,
        (Metric::Heartbeat, FaultKind::VmDown | FaultKind::NcDown) => 0.0,
        (Metric::GpuHealth, FaultKind::GpuDrop) => 0.0,
        _ => value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_varied() {
        let a = noise(1, 2, Metric::ReadLatencyMs, 300);
        let b = noise(1, 2, Metric::ReadLatencyMs, 300);
        assert_eq!(a, b);
        let c = noise(1, 2, Metric::ReadLatencyMs, 301);
        assert_ne!(a, c);
        let d = noise(2, 2, Metric::ReadLatencyMs, 300);
        assert_ne!(a, d);
        assert!((-0.5..0.5).contains(&a));
    }

    #[test]
    fn noise_is_roughly_centered() {
        let n = 10_000;
        let mean: f64 =
            (0..n).map(|i| noise(7, 3, Metric::CpuSteal, i)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn seasonal_period_is_one_day() {
        let t = 3_600_000;
        assert!((seasonal(t) - seasonal(t + 86_400_000)).abs() < 1e-9);
        // Amplitude bounded.
        for i in 0..48 {
            let s = seasonal(i * 1_800_000);
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn baselines_are_sane() {
        for t in (0..86_400_000).step_by(3_600_000) {
            let lat = baseline(Metric::ReadLatencyMs, 1, 1, t);
            assert!((1.0..4.0).contains(&lat), "latency {lat}");
            let loss = baseline(Metric::PacketLossPct, 1, 1, t);
            assert!((0.0..1.0).contains(&loss), "loss {loss}");
            assert_eq!(baseline(Metric::Heartbeat, 1, 1, t), 1.0);
            assert_eq!(baseline(Metric::GpuHealth, 1, 1, t), 1.0);
            let p = baseline(Metric::PowerWatts, 1, 1, t);
            assert!((200.0..400.0).contains(&p), "power {p}");
        }
    }

    #[test]
    fn fault_distortions_hit_right_metrics() {
        let lat = baseline(Metric::ReadLatencyMs, 1, 1, 0);
        assert!((apply_fault(Metric::ReadLatencyMs, lat, &FaultKind::SlowIo { factor: 10.0 })
            / lat
            - 10.0)
            .abs()
            < 1e-9);
        // SlowIo does not touch packet loss.
        let loss = baseline(Metric::PacketLossPct, 1, 1, 0);
        assert_eq!(apply_fault(Metric::PacketLossPct, loss, &FaultKind::SlowIo { factor: 10.0 }), loss);
        assert_eq!(apply_fault(Metric::Heartbeat, 1.0, &FaultKind::VmDown), 0.0);
        assert_eq!(apply_fault(Metric::PowerWatts, 321.0, &FaultKind::PowerZeroBug), 0.0);
        assert_eq!(
            apply_fault(Metric::PacketLossPct, 0.01, &FaultKind::DdosBlackhole),
            100.0
        );
        assert_eq!(apply_fault(Metric::GpuHealth, 1.0, &FaultKind::GpuDrop), 0.0);
    }

    #[test]
    fn unit_in_unit_interval() {
        for i in 0..1000 {
            let u = unit(9, 4, i);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
