//! Customer-ticket generation.
//!
//! Tickets drive two things in the paper: the Fig. 2 distribution
//! (unavailability 27% / performance 44% / control-plane 29% of
//! stability-related tickets) and the customer-perceived event weights of
//! Eq. 2. Here tickets are generated from the ground-truth damage a VM's
//! owner experienced, with per-category report propensities: performance
//! issues are individually milder but far more frequent, so they dominate
//! ticket volume — matching the paper's observed shape.

use serde::{Deserialize, Serialize};

use crate::faults::{DamageCategory, FaultTarget};
use crate::telemetry::unit;
use crate::topology::VmId;
use crate::world::SimWorld;

/// A customer support ticket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ticket {
    /// Filing time (ms) — shortly after the issue started.
    pub time: i64,
    /// The affected VM.
    pub vm: VmId,
    /// Free text as a customer might write it.
    pub text: String,
    /// Ground-truth category (used to score the classifier, never shown to
    /// the pipeline).
    pub truth: DamageCategory,
    /// Ground-truth fault name (for Eq. 2 per-event ticket counts).
    pub fault_name: &'static str,
}

/// Report propensity: probability that a customer files a ticket for one
/// experienced damage interval of each category.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReportPropensity {
    /// Unavailability complaints (high: downtime is always noticed).
    pub unavailability: f64,
    /// Performance complaints.
    pub performance: f64,
    /// Control-plane complaints.
    pub control_plane: f64,
}

impl Default for ReportPropensity {
    fn default() -> Self {
        ReportPropensity { unavailability: 0.9, performance: 0.5, control_plane: 0.7 }
    }
}

/// Synthesize tickets from every fault a VM experienced in `[start, end)`.
///
/// Deterministic: the decision to file is a hash of `(seed, vm, fault
/// start)`. Ticket text mimics customer phrasing per category so the
/// keyword classifier in `cloudbot` has something realistic to chew on.
pub fn generate_tickets(
    world: &SimWorld,
    start: i64,
    end: i64,
    propensity: &ReportPropensity,
) -> Vec<Ticket> {
    let mut out = Vec::new();
    for f in world.faults() {
        if f.range.start < start || f.range.start >= end {
            continue;
        }
        let category = f.kind.category();
        let p = match category {
            DamageCategory::Unavailability => propensity.unavailability,
            DamageCategory::Performance => propensity.performance,
            DamageCategory::ControlPlane => propensity.control_plane,
        };
        // Expand the fault to the affected VMs.
        let affected: Vec<VmId> = match f.target {
            FaultTarget::Vm(v) => vec![v],
            FaultTarget::Nc(nc) => world.fleet.vms_on(nc).to_vec(),
            FaultTarget::Az(_) | FaultTarget::Global => world
                .fleet
                .vms()
                .iter()
                .map(|v| v.id)
                .filter(|&v| {
                    world
                        .active_faults_on_vm(v, f.range.start)
                        .iter()
                        .any(|g| std::ptr::eq(*g, f))
                })
                .collect(),
        };
        for vm in affected {
            if unit(world.seed(), vm.wrapping_mul(7919), f.range.start) >= p {
                continue;
            }
            let text = match category {
                DamageCategory::Unavailability => {
                    format!("our instance vm-{vm} is down and unreachable, ssh times out")
                }
                DamageCategory::Performance => format!(
                    "api latency on vm-{vm} increased sharply, disk io is very slow"
                ),
                DamageCategory::ControlPlane => format!(
                    "cannot stop or resize vm-{vm} from the console, the api call fails"
                ),
            };
            out.push(Ticket {
                // Customers notice within ~10 minutes.
                time: f.range.start + 600_000,
                vm,
                text,
                truth: category,
                fault_name: f.kind.name(),
            });
        }
    }
    out.sort_by_key(|t| (t.time, t.vm));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultInjection, FaultKind};
    use crate::topology::{DeploymentArch, Fleet, FleetConfig};

    fn world_with(faults: Vec<FaultInjection>) -> SimWorld {
        let fleet = Fleet::build(&FleetConfig {
            regions: vec!["r1".into()],
            azs_per_region: 1,
            clusters_per_az: 1,
            ncs_per_cluster: 4,
            vms_per_nc: 5,
            nc_cores: 8,
            machine_models: vec!["m".into()],
            arch: DeploymentArch::Hybrid,
        });
        let mut w = SimWorld::new(fleet, 7);
        w.inject_all(faults);
        w
    }

    const HOUR: i64 = 3_600_000;

    #[test]
    fn certain_propensity_files_for_every_affected_vm() {
        let w = world_with(vec![FaultInjection::new(
            FaultKind::NcDown,
            crate::faults::FaultTarget::Nc(0),
            0,
            HOUR,
        )]);
        let p = ReportPropensity { unavailability: 1.0, performance: 1.0, control_plane: 1.0 };
        let tickets = generate_tickets(&w, 0, 2 * HOUR, &p);
        assert_eq!(tickets.len(), w.fleet.vms_on(0).len());
        assert!(tickets.iter().all(|t| t.truth == DamageCategory::Unavailability));
        assert!(tickets.iter().all(|t| t.text.contains("down")));
        assert!(tickets.iter().all(|t| t.fault_name == "nc_down"));
    }

    #[test]
    fn zero_propensity_files_nothing() {
        let w = world_with(vec![FaultInjection::new(
            FaultKind::SlowIo { factor: 8.0 },
            crate::faults::FaultTarget::Vm(1),
            0,
            HOUR,
        )]);
        let p = ReportPropensity { unavailability: 0.0, performance: 0.0, control_plane: 0.0 };
        assert!(generate_tickets(&w, 0, HOUR, &p).is_empty());
    }

    #[test]
    fn faults_outside_window_ignored() {
        let w = world_with(vec![FaultInjection::new(
            FaultKind::VmDown,
            crate::faults::FaultTarget::Vm(1),
            5 * HOUR,
            6 * HOUR,
        )]);
        let p = ReportPropensity::default();
        assert!(generate_tickets(&w, 0, HOUR, &p).is_empty());
        assert!(!generate_tickets(&w, 0, 10 * HOUR, &p).is_empty());
    }

    #[test]
    fn deterministic_across_calls() {
        let w = world_with(vec![FaultInjection::new(
            FaultKind::ControlPlaneOutage,
            crate::faults::FaultTarget::Global,
            0,
            HOUR,
        )]);
        let p = ReportPropensity::default();
        let a = generate_tickets(&w, 0, HOUR, &p);
        let b = generate_tickets(&w, 0, HOUR, &p);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|t| t.truth == DamageCategory::ControlPlane));
        assert!(a.iter().all(|t| t.text.contains("console")));
    }

    #[test]
    fn category_texts_are_distinct() {
        let w = world_with(vec![
            FaultInjection::new(FaultKind::VmDown, crate::faults::FaultTarget::Vm(0), 0, HOUR),
            FaultInjection::new(
                FaultKind::SlowIo { factor: 9.0 },
                crate::faults::FaultTarget::Vm(1),
                0,
                HOUR,
            ),
        ]);
        let p = ReportPropensity { unavailability: 1.0, performance: 1.0, control_plane: 1.0 };
        let tickets = generate_tickets(&w, 0, HOUR, &p);
        assert_eq!(tickets.len(), 2);
        let down = tickets.iter().find(|t| t.vm == 0).unwrap();
        let slow = tickets.iter().find(|t| t.vm == 1).unwrap();
        assert!(down.text.contains("unreachable"));
        assert!(slow.text.contains("slow"));
    }
}
