//! The fleet model: regions → availability zones → clusters → node
//! controllers (NCs) → VMs.
//!
//! NCs carry a machine model and a deployment architecture; VMs are
//! dedicated (pinned cores) or shared (floating cores), mirroring Case 5 of
//! the paper where the transition from homogeneous to hybrid deployment
//! (Fig. 7) exposed a core-allocation overlap bug on one machine model.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Identifier of a node controller (physical host).
pub type NcId = u64;
/// Identifier of a virtual machine.
pub type VmId = u64;

/// VM resource type (Case 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmType {
    /// Pinned to exclusive physical cores; consistent performance.
    Dedicated,
    /// Floats across a shared core pool; may contend at peak.
    Shared,
}

/// Deployment architecture of an NC (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeploymentArch {
    /// Hosts only dedicated VMs.
    HomogeneousDedicated,
    /// Hosts only shared VMs.
    HomogeneousShared,
    /// Hosts both types on disjoint core ranges — unless the incompatibility
    /// bug of Case 5 makes the ranges overlap on an affected machine model.
    Hybrid,
}

/// A physical host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Nc {
    /// Host id.
    pub id: NcId,
    /// Region name, e.g. `cn-hangzhou`.
    pub region: String,
    /// Availability zone, e.g. `cn-hangzhou-a`.
    pub az: String,
    /// Cluster name within the AZ.
    pub cluster: String,
    /// Machine model (hardware generation), e.g. `modelA`.
    pub machine_model: String,
    /// Physical core count.
    pub cores: u32,
    /// Deployment architecture.
    pub arch: DeploymentArch,
    /// Locked NCs accept no new VMs (operation platform action).
    pub locked: bool,
    /// Decommissioned NCs are out of production.
    pub decommissioned: bool,
}

/// A virtual machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vm {
    /// VM id.
    pub id: VmId,
    /// Hosting NC.
    pub nc: NcId,
    /// Resource type.
    pub vm_type: VmType,
    /// vCPU count.
    pub cores: u32,
}

/// Shape of a generated fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Region names.
    pub regions: Vec<String>,
    /// AZs per region.
    pub azs_per_region: usize,
    /// Clusters per AZ.
    pub clusters_per_az: usize,
    /// NCs per cluster.
    pub ncs_per_cluster: usize,
    /// VMs packed onto each NC.
    pub vms_per_nc: usize,
    /// Physical cores per NC (the paper's Case 6 example uses 104).
    pub nc_cores: u32,
    /// Machine models cycled across NCs.
    pub machine_models: Vec<String>,
    /// Architecture assigned to every NC at build time.
    pub arch: DeploymentArch,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            regions: vec!["cn-hangzhou".into(), "cn-shanghai".into(), "ap-singapore".into()],
            azs_per_region: 2,
            clusters_per_az: 2,
            ncs_per_cluster: 4,
            vms_per_nc: 8,
            nc_cores: 104,
            machine_models: vec!["modelA".into(), "modelB".into()],
            arch: DeploymentArch::Hybrid,
        }
    }
}

/// One level of the fleet hierarchy (region → AZ → cluster → NC → VM), the
/// unit of the serving layer's hierarchical CDI rollups.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// A whole region, by name (e.g. `cn-hangzhou`).
    Region(String),
    /// An availability zone, by name (e.g. `cn-hangzhou-a`).
    Az(String),
    /// A cluster, by name (e.g. `cn-hangzhou-a-c0`).
    Cluster(String),
    /// One physical host and everything on it.
    Nc(NcId),
    /// A single VM.
    Vm(VmId),
}

/// The fleet: all NCs and VMs plus placement indices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fleet {
    ncs: Vec<Nc>,
    vms: Vec<Vm>,
    vm_index: HashMap<VmId, usize>,
    nc_index: HashMap<NcId, usize>,
    by_nc: HashMap<NcId, Vec<VmId>>,
}

impl Fleet {
    /// Build a fleet from a config: NCs are laid out region → AZ → cluster,
    /// VMs are packed onto each NC alternating dedicated/shared (hybrid
    /// NCs) or uniformly typed (homogeneous NCs).
    pub fn build(config: &FleetConfig) -> Fleet {
        let mut ncs = Vec::new();
        let mut vms = Vec::new();
        let mut next_vm: VmId = 0;
        let mut next_nc: NcId = 0;
        for region in &config.regions {
            for az_i in 0..config.azs_per_region {
                let az = format!("{region}-{}", (b'a' + az_i as u8) as char);
                for cl_i in 0..config.clusters_per_az {
                    let cluster = format!("{az}-c{cl_i}");
                    for _ in 0..config.ncs_per_cluster {
                        let model = config.machine_models
                            [next_nc as usize % config.machine_models.len()]
                        .clone();
                        let nc_id = next_nc;
                        next_nc += 1;
                        ncs.push(Nc {
                            id: nc_id,
                            region: region.clone(),
                            az: az.clone(),
                            cluster: cluster.clone(),
                            machine_model: model,
                            cores: config.nc_cores,
                            arch: config.arch,
                            locked: false,
                            decommissioned: false,
                        });
                        for v in 0..config.vms_per_nc {
                            let vm_type = match config.arch {
                                DeploymentArch::HomogeneousDedicated => VmType::Dedicated,
                                DeploymentArch::HomogeneousShared => VmType::Shared,
                                DeploymentArch::Hybrid => {
                                    if v % 2 == 0 {
                                        VmType::Dedicated
                                    } else {
                                        VmType::Shared
                                    }
                                }
                            };
                            vms.push(Vm { id: next_vm, nc: nc_id, vm_type, cores: 4 });
                            next_vm += 1;
                        }
                    }
                }
            }
        }
        let vm_index = vms.iter().enumerate().map(|(i, v)| (v.id, i)).collect();
        let nc_index = ncs.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
        let mut by_nc: HashMap<NcId, Vec<VmId>> = HashMap::new();
        for v in &vms {
            by_nc.entry(v.nc).or_default().push(v.id);
        }
        Fleet { ncs, vms, vm_index, nc_index, by_nc }
    }

    /// All NCs.
    pub fn ncs(&self) -> &[Nc] {
        &self.ncs
    }

    /// All VMs.
    pub fn vms(&self) -> &[Vm] {
        &self.vms
    }

    /// Look up a VM.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vm_index.get(&id).map(|&i| &self.vms[i])
    }

    /// Look up an NC.
    pub fn nc(&self, id: NcId) -> Option<&Nc> {
        self.nc_index.get(&id).map(|&i| &self.ncs[i])
    }

    /// The NC hosting a VM.
    pub fn host_of(&self, vm: VmId) -> Option<&Nc> {
        self.vm(vm).and_then(|v| self.nc(v.nc))
    }

    /// VMs placed on an NC.
    pub fn vms_on(&self, nc: NcId) -> &[VmId] {
        self.by_nc.get(&nc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// VMs inside a hierarchy scope, in ascending id order. Unknown names
    /// and ids yield an empty slice-equivalent rather than an error — a
    /// rollup over nothing is an empty rollup.
    pub fn vms_in(&self, scope: &Scope) -> Vec<VmId> {
        let mut out: Vec<VmId> = match scope {
            Scope::Region(name) => self
                .ncs
                .iter()
                .filter(|n| &n.region == name)
                .flat_map(|n| self.vms_on(n.id).iter().copied())
                .collect(),
            Scope::Az(name) => self
                .ncs
                .iter()
                .filter(|n| &n.az == name)
                .flat_map(|n| self.vms_on(n.id).iter().copied())
                .collect(),
            Scope::Cluster(name) => self
                .ncs
                .iter()
                .filter(|n| &n.cluster == name)
                .flat_map(|n| self.vms_on(n.id).iter().copied())
                .collect(),
            Scope::Nc(id) => self.vms_on(*id).to_vec(),
            Scope::Vm(id) => self.vm(*id).map(|v| vec![v.id]).unwrap_or_default(),
        };
        out.sort_unstable();
        out
    }

    /// NCs inside a hierarchy scope, in ascending id order. A `Vm` scope
    /// resolves to its current host; unknown names and ids yield an empty
    /// list, mirroring [`Fleet::vms_in`].
    pub fn ncs_in(&self, scope: &Scope) -> Vec<NcId> {
        let mut out: Vec<NcId> = match scope {
            Scope::Region(name) => {
                self.ncs.iter().filter(|n| &n.region == name).map(|n| n.id).collect()
            }
            Scope::Az(name) => {
                self.ncs.iter().filter(|n| &n.az == name).map(|n| n.id).collect()
            }
            Scope::Cluster(name) => {
                self.ncs.iter().filter(|n| &n.cluster == name).map(|n| n.id).collect()
            }
            Scope::Nc(id) => self.nc(*id).map(|n| vec![n.id]).unwrap_or_default(),
            Scope::Vm(id) => self.host_of(*id).map(|n| vec![n.id]).unwrap_or_default(),
        };
        out.sort_unstable();
        out
    }

    /// Sorted cluster names, the enumeration space of
    /// [`Scope::Cluster`]-targeted fault campaigns.
    pub fn cluster_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.ncs.iter().map(|n| n.cluster.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Migrate a VM to a new host (live migration / cold migration effect).
    /// Fails if the destination is locked, decommissioned, or unknown.
    pub fn migrate(&mut self, vm: VmId, to: NcId) -> Result<(), String> {
        let dest = self.nc(to).ok_or_else(|| format!("unknown NC {to}"))?;
        if dest.locked {
            return Err(format!("NC {to} is locked"));
        }
        if dest.decommissioned {
            return Err(format!("NC {to} is decommissioned"));
        }
        let &vi = self.vm_index.get(&vm).ok_or_else(|| format!("unknown VM {vm}"))?;
        let from = self.vms[vi].nc;
        if from == to {
            return Ok(());
        }
        self.vms[vi].nc = to;
        if let Some(list) = self.by_nc.get_mut(&from) {
            list.retain(|&v| v != vm);
        }
        self.by_nc.entry(to).or_default().push(vm);
        Ok(())
    }

    /// Lock an NC (halts new placements and inbound migration).
    pub fn lock_nc(&mut self, nc: NcId) -> Result<(), String> {
        let &i = self.nc_index.get(&nc).ok_or_else(|| format!("unknown NC {nc}"))?;
        self.ncs[i].locked = true;
        Ok(())
    }

    /// Unlock an NC.
    pub fn unlock_nc(&mut self, nc: NcId) -> Result<(), String> {
        let &i = self.nc_index.get(&nc).ok_or_else(|| format!("unknown NC {nc}"))?;
        self.ncs[i].locked = false;
        Ok(())
    }

    /// Decommission an NC (must be empty of VMs).
    pub fn decommission_nc(&mut self, nc: NcId) -> Result<(), String> {
        if !self.vms_on(nc).is_empty() {
            return Err(format!("NC {nc} still hosts VMs"));
        }
        let &i = self.nc_index.get(&nc).ok_or_else(|| format!("unknown NC {nc}"))?;
        self.ncs[i].decommissioned = true;
        Ok(())
    }

    /// An unlocked, in-production NC other than `exclude`, with the fewest
    /// VMs — the migration destination chooser.
    pub fn pick_destination(&self, exclude: NcId) -> Option<NcId> {
        self.ncs
            .iter()
            .filter(|n| n.id != exclude && !n.locked && !n.decommissioned)
            .min_by_key(|n| (self.vms_on(n.id).len(), n.id))
            .map(|n| n.id)
    }

    /// Change the architecture tag of an NC (Case 5 rollout / rollback).
    pub fn set_arch(&mut self, nc: NcId, arch: DeploymentArch) -> Result<(), String> {
        let &i = self.nc_index.get(&nc).ok_or_else(|| format!("unknown NC {nc}"))?;
        self.ncs[i].arch = arch;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet() -> Fleet {
        Fleet::build(&FleetConfig {
            regions: vec!["r1".into(), "r2".into()],
            azs_per_region: 2,
            clusters_per_az: 1,
            ncs_per_cluster: 2,
            vms_per_nc: 4,
            nc_cores: 16,
            machine_models: vec!["mA".into(), "mB".into()],
            arch: DeploymentArch::Hybrid,
        })
    }

    #[test]
    fn build_counts() {
        let f = small_fleet();
        assert_eq!(f.ncs().len(), (2 * 2) * 2);
        assert_eq!(f.vms().len(), 8 * 4);
        // Machine models alternate.
        assert_eq!(f.ncs()[0].machine_model, "mA");
        assert_eq!(f.ncs()[1].machine_model, "mB");
    }

    #[test]
    fn hierarchy_naming() {
        let f = small_fleet();
        let nc = &f.ncs()[0];
        assert_eq!(nc.region, "r1");
        assert_eq!(nc.az, "r1-a");
        assert_eq!(nc.cluster, "r1-a-c0");
        let last = f.ncs().last().unwrap();
        assert_eq!(last.region, "r2");
        assert_eq!(last.az, "r2-b");
    }

    #[test]
    fn hybrid_packs_both_types() {
        let f = small_fleet();
        let on_first = f.vms_on(0);
        let types: Vec<VmType> = on_first.iter().map(|&v| f.vm(v).unwrap().vm_type).collect();
        assert!(types.contains(&VmType::Dedicated));
        assert!(types.contains(&VmType::Shared));
    }

    #[test]
    fn homogeneous_packs_one_type() {
        let f = Fleet::build(&FleetConfig {
            arch: DeploymentArch::HomogeneousDedicated,
            ..FleetConfig::default()
        });
        assert!(f.vms().iter().all(|v| v.vm_type == VmType::Dedicated));
    }

    #[test]
    fn lookups_and_placement() {
        let f = small_fleet();
        let vm = f.vms()[5].clone();
        assert_eq!(f.vm(vm.id).unwrap().id, vm.id);
        assert_eq!(f.host_of(vm.id).unwrap().id, vm.nc);
        assert!(f.vms_on(vm.nc).contains(&vm.id));
        assert!(f.vm(9999).is_none());
        assert!(f.nc(9999).is_none());
    }

    #[test]
    fn migration_moves_and_respects_locks() {
        let mut f = small_fleet();
        let vm = f.vms()[0].id;
        let from = f.vm(vm).unwrap().nc;
        let to = f.pick_destination(from).unwrap();
        f.migrate(vm, to).unwrap();
        assert_eq!(f.vm(vm).unwrap().nc, to);
        assert!(!f.vms_on(from).contains(&vm));
        assert!(f.vms_on(to).contains(&vm));

        f.lock_nc(from).unwrap();
        assert!(f.migrate(vm, from).is_err());
        f.unlock_nc(from).unwrap();
        f.migrate(vm, from).unwrap();
        assert_eq!(f.vm(vm).unwrap().nc, from);
    }

    #[test]
    fn migrate_to_same_host_is_noop() {
        let mut f = small_fleet();
        let vm = f.vms()[0].id;
        let nc = f.vm(vm).unwrap().nc;
        f.migrate(vm, nc).unwrap();
        assert_eq!(f.vms_on(nc).iter().filter(|&&v| v == vm).count(), 1);
    }

    #[test]
    fn decommission_requires_empty() {
        let mut f = small_fleet();
        assert!(f.decommission_nc(0).is_err());
        // Drain NC 0.
        let vms: Vec<VmId> = f.vms_on(0).to_vec();
        for vm in vms {
            let to = f.pick_destination(0).unwrap();
            f.migrate(vm, to).unwrap();
        }
        f.decommission_nc(0).unwrap();
        assert!(f.nc(0).unwrap().decommissioned);
        // A decommissioned NC is not a destination.
        assert_ne!(f.pick_destination(1), Some(0));
        assert!(f.migrate(f.vms()[0].id, 0).is_err());
    }

    #[test]
    fn pick_destination_prefers_least_loaded() {
        let mut f = small_fleet();
        // Drain NC 1 onto others; then NC 1 is the emptiest.
        let vms: Vec<VmId> = f.vms_on(1).to_vec();
        for vm in vms {
            f.migrate(vm, 2).unwrap();
        }
        assert_eq!(f.pick_destination(0), Some(1));
    }

    #[test]
    fn scopes_select_the_hierarchy() {
        let f = small_fleet();
        // 2 regions × 2 AZs × 1 cluster × 2 NCs × 4 VMs.
        assert_eq!(f.vms_in(&Scope::Region("r1".into())).len(), 16);
        assert_eq!(f.vms_in(&Scope::Az("r1-a".into())).len(), 8);
        assert_eq!(f.vms_in(&Scope::Cluster("r1-a-c0".into())).len(), 8);
        assert_eq!(f.vms_in(&Scope::Nc(0)).len(), 4);
        assert_eq!(f.vms_in(&Scope::Vm(3)), vec![3]);
        assert!(f.vms_in(&Scope::Region("nope".into())).is_empty());
        assert!(f.vms_in(&Scope::Vm(9999)).is_empty());
        // Scopes nest: every AZ VM is in its region.
        let region: Vec<VmId> = f.vms_in(&Scope::Region("r1".into()));
        for vm in f.vms_in(&Scope::Az("r1-b".into())) {
            assert!(region.contains(&vm));
        }
    }

    #[test]
    fn ncs_in_selects_the_hierarchy() {
        let f = small_fleet();
        // 2 regions × 2 AZs × 1 cluster × 2 NCs.
        assert_eq!(f.ncs_in(&Scope::Region("r1".into())).len(), 4);
        assert_eq!(f.ncs_in(&Scope::Az("r1-a".into())).len(), 2);
        assert_eq!(f.ncs_in(&Scope::Cluster("r1-a-c0".into())).len(), 2);
        assert_eq!(f.ncs_in(&Scope::Nc(1)), vec![1]);
        // A VM scope resolves to its host.
        let vm = f.vms()[0].clone();
        assert_eq!(f.ncs_in(&Scope::Vm(vm.id)), vec![vm.nc]);
        assert!(f.ncs_in(&Scope::Region("nope".into())).is_empty());
        assert!(f.ncs_in(&Scope::Nc(9999)).is_empty());
        assert!(f.ncs_in(&Scope::Vm(9999)).is_empty());
        // Sorted ascending.
        let ids = f.ncs_in(&Scope::Region("r2".into()));
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cluster_names_sorted_unique() {
        let f = small_fleet();
        let names = f.cluster_names();
        assert_eq!(names.len(), 4);
        assert!(names.windows(2).all(|w| w[0] < w[1]));
        assert!(names.contains(&"r1-a-c0".to_string()));
    }

    #[test]
    fn set_arch_changes_tag() {
        let mut f = small_fleet();
        f.set_arch(0, DeploymentArch::HomogeneousShared).unwrap();
        assert_eq!(f.nc(0).unwrap().arch, DeploymentArch::HomogeneousShared);
        assert!(f.set_arch(999, DeploymentArch::Hybrid).is_err());
    }
}
