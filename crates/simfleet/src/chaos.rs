//! Chaos injection: deterministic malformed-telemetry generation.
//!
//! Production CloudBot ingests events from dozens of independently-evolving
//! detectors; records with unknown names, inverted spans, duplicates, and
//! late arrivals are the normal case. A [`ChaosConfig`] attached to a
//! [`SimWorld`](crate::world::SimWorld) injects a seeded, reproducible batch
//! of exactly such records into the extracted event stream, so the
//! pipeline's quarantine and retry paths are exercised end-to-end and a
//! test can account for every injected bad event.
//!
//! Generation is pure splitmix64 hashing over `(seed, kind, index)` — no
//! RNG state, so the same config always produces the same batch regardless
//! of call order.

use serde::{Deserialize, Serialize};

use crate::topology::VmId;

/// The catalog name chaos borrows for inverted spans: a measured-duration
/// event whose logged duration is made negative.
pub const INVERTED_SPAN_NAME: &str = "qemu_live_upgrade";

/// The catalog name chaos borrows for late arrivals: a windowed event
/// stamped at or after the end of the service period.
pub const LATE_ARRIVAL_NAME: &str = "slow_io";

/// What is malformed about one injected event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChaosKind {
    /// A name no catalog will ever contain.
    UnknownName,
    /// A negative measured duration, putting the span's end before its start.
    InvertedSpan,
    /// A timestamp at or beyond the end of the service window.
    LateArrival,
    /// An exact copy of another injected unknown-name event.
    Duplicate,
}

/// One injected malformed event, in simulator terms (the pipeline maps it
/// onto its own raw-event type).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// What is malformed about it.
    pub kind: ChaosKind,
    /// Event name.
    pub name: String,
    /// Extraction timestamp (ms).
    pub time: i64,
    /// Targeted VM.
    pub vm: VmId,
    /// Logged duration, when the kind carries one.
    pub measured_duration: Option<i64>,
}

/// Seeded malformed-event injection plan for one service window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Chaos stream seed (independent of the world seed, so the same fleet
    /// can be run under different chaos batches).
    pub seed: u64,
    /// Events with names outside any catalog.
    pub unknown_names: usize,
    /// Events with a negative measured duration.
    pub inverted_spans: usize,
    /// Events stamped at/after the window end.
    pub late_arrivals: usize,
    /// Exact copies of unknown-name events.
    pub duplicates: usize,
}

impl ChaosConfig {
    /// A small default dose of every malformity.
    pub fn light(seed: u64) -> Self {
        ChaosConfig { seed, unknown_names: 4, inverted_spans: 3, late_arrivals: 3, duplicates: 2 }
    }

    /// Total events an [`ChaosConfig::events`] call will inject.
    pub fn total(&self) -> usize {
        self.unknown_names + self.inverted_spans + self.late_arrivals + self.duplicates
    }

    /// Generate the malformed batch for `[start, end)` over the given VM
    /// ids. Deterministic in `(self, vms, start, end)`; returns exactly
    /// [`ChaosConfig::total`] events. Late arrivals are stamped inside
    /// `[end, end + (end - start))` — they belong to the window but arrive
    /// after it closed.
    pub fn events(&self, vms: &[VmId], start: i64, end: i64) -> Vec<ChaosEvent> {
        assert!(end > start, "chaos window must be non-empty");
        if vms.is_empty() {
            return Vec::new();
        }
        let span = end - start;
        let pick_vm = |h: u64| vms[(h % vms.len() as u64) as usize];
        let pick_time = |h: u64| start + (h % span as u64) as i64;
        let mut out = Vec::with_capacity(self.total());

        let mut unknowns = Vec::with_capacity(self.unknown_names);
        for i in 0..self.unknown_names {
            let h = splitmix64(self.seed ^ 0x1111_1111 ^ i as u64);
            let e = ChaosEvent {
                kind: ChaosKind::UnknownName,
                name: format!("chaos_unknown_{:08x}", h as u32),
                time: pick_time(splitmix64(h)),
                vm: pick_vm(h),
                measured_duration: None,
            };
            unknowns.push(e.clone());
            out.push(e);
        }
        for i in 0..self.inverted_spans {
            let h = splitmix64(self.seed ^ 0x2222_2222 ^ i as u64);
            out.push(ChaosEvent {
                kind: ChaosKind::InvertedSpan,
                name: INVERTED_SPAN_NAME.to_string(),
                time: pick_time(splitmix64(h)),
                vm: pick_vm(h),
                // Strictly negative logged duration.
                measured_duration: Some(-((h % 10_000) as i64) - 1),
            });
        }
        for i in 0..self.late_arrivals {
            let h = splitmix64(self.seed ^ 0x3333_3333 ^ i as u64);
            out.push(ChaosEvent {
                kind: ChaosKind::LateArrival,
                name: LATE_ARRIVAL_NAME.to_string(),
                time: end + (splitmix64(h) % span as u64) as i64,
                vm: pick_vm(h),
                measured_duration: None,
            });
        }
        for i in 0..self.duplicates {
            let mut e = if unknowns.is_empty() {
                // No unknown-name events to copy: emit a fresh one so the
                // duplicate still counts as exactly one injected event.
                let h = splitmix64(self.seed ^ 0x4444_4444 ^ i as u64);
                ChaosEvent {
                    kind: ChaosKind::UnknownName,
                    name: format!("chaos_dup_{:08x}", h as u32),
                    time: pick_time(splitmix64(h)),
                    vm: pick_vm(h),
                    measured_duration: None,
                }
            } else {
                unknowns[i % unknowns.len()].clone()
            };
            e.kind = ChaosKind::Duplicate;
            out.push(e);
        }
        out
    }
}

/// The splitmix64 finalizer — a one-shot, stateless 64-bit mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: i64 = 3_600_000;

    fn vms() -> Vec<VmId> {
        (0..16).collect()
    }

    #[test]
    fn batch_is_deterministic_and_sized() {
        let cfg = ChaosConfig::light(7);
        let a = cfg.events(&vms(), 0, 6 * HOUR);
        let b = cfg.events(&vms(), 0, 6 * HOUR);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.total());
        assert_eq!(cfg.total(), 12);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosConfig::light(1).events(&vms(), 0, HOUR);
        let b = ChaosConfig::light(2).events(&vms(), 0, HOUR);
        assert_ne!(a, b);
    }

    #[test]
    fn kinds_carry_their_malformity() {
        let cfg = ChaosConfig::light(7);
        let batch = cfg.events(&vms(), 0, 6 * HOUR);
        for e in &batch {
            match e.kind {
                ChaosKind::UnknownName | ChaosKind::Duplicate => {
                    assert!(e.name.starts_with("chaos_"), "{}", e.name);
                    assert!((0..6 * HOUR).contains(&e.time));
                }
                ChaosKind::InvertedSpan => {
                    assert_eq!(e.name, INVERTED_SPAN_NAME);
                    assert!(e.measured_duration.unwrap() < 0);
                    assert!((0..6 * HOUR).contains(&e.time));
                }
                ChaosKind::LateArrival => {
                    assert_eq!(e.name, LATE_ARRIVAL_NAME);
                    assert!(e.time >= 6 * HOUR, "late arrival at {}", e.time);
                }
            }
        }
    }

    #[test]
    fn duplicates_copy_unknown_events() {
        let cfg = ChaosConfig { seed: 3, unknown_names: 2, inverted_spans: 0, late_arrivals: 0, duplicates: 3 };
        let batch = cfg.events(&vms(), 0, HOUR);
        assert_eq!(batch.len(), 5);
        let dup = batch.iter().find(|e| e.kind == ChaosKind::Duplicate).unwrap();
        assert!(batch
            .iter()
            .any(|e| e.kind == ChaosKind::UnknownName && e.name == dup.name && e.time == dup.time));
    }

    #[test]
    fn duplicates_self_sufficient_without_unknowns() {
        let cfg = ChaosConfig { seed: 3, unknown_names: 0, inverted_spans: 0, late_arrivals: 0, duplicates: 2 };
        let batch = cfg.events(&vms(), 0, HOUR);
        assert_eq!(batch.len(), 2);
        assert!(batch.iter().all(|e| e.name.starts_with("chaos_dup_")));
    }

    #[test]
    fn empty_vm_list_injects_nothing() {
        assert!(ChaosConfig::light(1).events(&[], 0, HOUR).is_empty());
    }
}
