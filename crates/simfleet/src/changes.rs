//! Change-release rollouts.
//!
//! "The release of changes is a significant contributor to stability
//! problems" (Section VI-C). A [`ChangeRollout`] deploys a change to NCs in
//! gradual batches; if the change carries a defect, every touched NC gets
//! the defect fault from its deployment time until the rollout's `fix_at`
//! time (Case 6: the scheduler data corruption landed with a change on
//! Day 13/14 and was fixed on Day 15).

use serde::{Deserialize, Serialize};

use crate::faults::{FaultInjection, FaultKind, FaultTarget};
use crate::topology::{Fleet, NcId};

/// A gradual change rollout across the fleet's NCs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChangeRollout {
    /// Human-readable change name.
    pub name: String,
    /// Deployment start (ms).
    pub start: i64,
    /// Time between batches (ms).
    pub batch_interval: i64,
    /// NCs per batch.
    pub batch_size: usize,
    /// Total NCs to touch (capped at fleet size).
    pub total_ncs: usize,
    /// Defect carried by the change, if any.
    pub defect: Option<FaultKind>,
    /// When the defect is fixed everywhere (ms); defects run from each NC's
    /// deployment time until this instant.
    pub fix_at: i64,
}

/// One (NC, deployed-at) record of a rollout plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    /// Target NC.
    pub nc: NcId,
    /// Deployment timestamp (ms).
    pub at: i64,
}

impl ChangeRollout {
    /// The deployment plan over a fleet: NCs in id order, batch by batch.
    pub fn plan(&self, fleet: &Fleet) -> Vec<Deployment> {
        let mut out = Vec::new();
        let ncs: Vec<NcId> = fleet
            .ncs()
            .iter()
            .filter(|n| !n.decommissioned)
            .map(|n| n.id)
            .take(self.total_ncs)
            .collect();
        for (i, nc) in ncs.into_iter().enumerate() {
            let batch = i / self.batch_size.max(1);
            out.push(Deployment { nc, at: self.start + batch as i64 * self.batch_interval });
        }
        out
    }

    /// Fault injections produced by the rollout's defect (empty for clean
    /// changes). Each touched NC is faulty from its deployment until
    /// `fix_at`.
    pub fn defect_injections(&self, fleet: &Fleet) -> Vec<FaultInjection> {
        let Some(defect) = &self.defect else {
            return Vec::new();
        };
        self.plan(fleet)
            .into_iter()
            .filter(|d| d.at < self.fix_at)
            .map(|d| FaultInjection::new(defect.clone(), FaultTarget::Nc(d.nc), d.at, self.fix_at))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{DeploymentArch, FleetConfig};

    fn fleet() -> Fleet {
        Fleet::build(&FleetConfig {
            regions: vec!["r1".into()],
            azs_per_region: 1,
            clusters_per_az: 1,
            ncs_per_cluster: 6,
            vms_per_nc: 2,
            nc_cores: 8,
            machine_models: vec!["m".into()],
            arch: DeploymentArch::Hybrid,
        })
    }

    #[test]
    fn plan_batches_by_interval() {
        let r = ChangeRollout {
            name: "kernel-upgrade".into(),
            start: 1000,
            batch_interval: 500,
            batch_size: 2,
            total_ncs: 5,
            defect: None,
            fix_at: i64::MAX,
        };
        let plan = r.plan(&fleet());
        assert_eq!(plan.len(), 5);
        assert_eq!(plan[0].at, 1000);
        assert_eq!(plan[1].at, 1000);
        assert_eq!(plan[2].at, 1500);
        assert_eq!(plan[4].at, 2000);
    }

    #[test]
    fn clean_change_injects_nothing() {
        let r = ChangeRollout {
            name: "clean".into(),
            start: 0,
            batch_interval: 100,
            batch_size: 1,
            total_ncs: 3,
            defect: None,
            fix_at: 10_000,
        };
        assert!(r.defect_injections(&fleet()).is_empty());
    }

    #[test]
    fn defective_change_faults_each_touched_nc_until_fix() {
        let r = ChangeRollout {
            name: "bad-scheduler".into(),
            start: 0,
            batch_interval: 1_000,
            batch_size: 1,
            total_ncs: 3,
            defect: Some(FaultKind::SchedulerDataCorruption),
            fix_at: 10_000,
        };
        let inj = r.defect_injections(&fleet());
        assert_eq!(inj.len(), 3);
        for (i, f) in inj.iter().enumerate() {
            assert_eq!(f.range.start, i as i64 * 1_000);
            assert_eq!(f.range.end, 10_000);
            assert_eq!(f.kind, FaultKind::SchedulerDataCorruption);
        }
    }

    #[test]
    fn deployments_after_fix_produce_no_fault() {
        let r = ChangeRollout {
            name: "late".into(),
            start: 0,
            batch_interval: 6_000,
            batch_size: 1,
            total_ncs: 3,
            defect: Some(FaultKind::SchedulerDataCorruption),
            fix_at: 7_000,
        };
        // Batches at 0, 6000, 12000; the last is after the fix.
        assert_eq!(r.defect_injections(&fleet()).len(), 2);
    }

    #[test]
    fn plan_capped_at_fleet_size() {
        let r = ChangeRollout {
            name: "wide".into(),
            start: 0,
            batch_interval: 1,
            batch_size: 100,
            total_ncs: 1_000,
            defect: None,
            fix_at: 0,
        };
        assert_eq!(r.plan(&fleet()).len(), 6);
    }
}
