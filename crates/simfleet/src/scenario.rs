//! Pre-built scenarios, one per paper experiment (see DESIGN.md §3).
//!
//! Each scenario fixes a seed, a fleet shape, and a fault schedule chosen so
//! that the *shape* of the paper's corresponding figure emerges from the
//! real pipeline (collector → extractor → CDI), not from hard-coded curves.
//! Intensities are calibrated to the paper's reported relative magnitudes,
//! not Alibaba's absolute (and normalized) values.

use serde::{Deserialize, Serialize};

use crate::faults::{FaultInjection, FaultKind, FaultTarget};
use crate::telemetry::unit;
use crate::topology::{DeploymentArch, Fleet, FleetConfig, VmId};
use crate::world::SimWorld;

/// Milliseconds per simulated day.
pub const DAY: i64 = 86_400_000;
/// Milliseconds per hour.
pub const HOUR: i64 = 3_600_000;
/// Milliseconds per minute.
pub const MINUTE: i64 = 60_000;

/// Background fault rates: expected faults per VM per day, per category.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackgroundRates {
    /// Short unavailability episodes (crash + auto-restart).
    pub unavailability: f64,
    /// Performance degradations (slow IO, packet loss, contention).
    pub performance: f64,
    /// Control-plane hiccups.
    pub control_plane: f64,
}

impl BackgroundRates {
    /// A quiet production day: rare unavailability, occasional performance
    /// noise, sporadic control hiccups.
    pub fn quiet() -> Self {
        BackgroundRates { unavailability: 0.01, performance: 0.15, control_plane: 0.03 }
    }

    /// Uniformly scale every rate.
    pub fn scaled(&self, f: f64) -> Self {
        BackgroundRates {
            unavailability: self.unavailability * f,
            performance: self.performance * f,
            control_plane: self.control_plane * f,
        }
    }
}

/// Deterministically inject background faults over `[start, end)` at the
/// given per-VM daily rates. Fault start times, kinds and durations all
/// derive from the seed.
pub fn background_faults(
    world: &mut SimWorld,
    start: i64,
    end: i64,
    rates: &BackgroundRates,
) {
    let seed = world.seed();
    let vm_ids: Vec<VmId> = world.fleet.vms().iter().map(|v| v.id).collect();
    let mut injections = Vec::new();
    let days = (end - start) / DAY;
    for vm in vm_ids {
        for d in 0..days.max(1) {
            let day_start = start + d * DAY;
            // Performance faults.
            let u = unit(seed, vm.wrapping_mul(3) ^ 0x11, day_start);
            if u < rates.performance {
                let at = day_start + (unit(seed, vm ^ 0x22, day_start) * DAY as f64) as i64;
                let dur = 5 * MINUTE + (unit(seed, vm ^ 0x33, day_start) * 25.0) as i64 * MINUTE;
                let kind = match (u * 1000.0) as u64 % 3 {
                    0 => FaultKind::SlowIo { factor: 6.0 },
                    1 => FaultKind::PacketLoss { rate: 0.08 },
                    _ => FaultKind::CpuContention { steal: 0.25 },
                };
                injections.push(FaultInjection::new(
                    kind,
                    FaultTarget::Vm(vm),
                    at,
                    (at + dur).min(end),
                ));
            }
            // Unavailability faults (short crash + restart).
            let u = unit(seed, vm.wrapping_mul(5) ^ 0x44, day_start);
            if u < rates.unavailability {
                let at = day_start + (unit(seed, vm ^ 0x55, day_start) * DAY as f64) as i64;
                let dur = 2 * MINUTE + (unit(seed, vm ^ 0x66, day_start) * 8.0) as i64 * MINUTE;
                injections.push(FaultInjection::new(
                    FaultKind::VmDown,
                    FaultTarget::Vm(vm),
                    at,
                    (at + dur).min(end),
                ));
            }
            // Control-plane hiccups.
            let u = unit(seed, vm.wrapping_mul(7) ^ 0x77, day_start);
            if u < rates.control_plane {
                let at = day_start + (unit(seed, vm ^ 0x88, day_start) * DAY as f64) as i64;
                let dur = 10 * MINUTE + (unit(seed, vm ^ 0x99, day_start) * 20.0) as i64 * MINUTE;
                injections.push(FaultInjection::new(
                    FaultKind::ControlPlaneOutage,
                    FaultTarget::Vm(vm),
                    at,
                    (at + dur).min(end),
                ));
            }
        }
    }
    world.inject_all(injections);
}

/// A modest default fleet used by most scenarios (~192 VMs).
pub fn default_fleet() -> Fleet {
    Fleet::build(&FleetConfig::default())
}

// ---------------------------------------------------------------------------
// Fig. 5: incident comparison (CDI vs AIR vs Downtime Percentage)
// ---------------------------------------------------------------------------

/// One Fig. 5 scenario day.
#[derive(Debug)]
pub struct IncidentDay {
    /// Figure label (`Daily`, `20240425`, `20240702`, `20250107`).
    pub label: &'static str,
    /// The world with background plus (possibly) incident faults.
    pub world: SimWorld,
}

/// Build the four Fig. 5 days: a quiet baseline and three incidents.
///
/// - **20240425** — Availability Zone C, Singapore: infrastructure outage
///   taking VMs down for ~2 hours (unavailability shows in CDI-U, AIR, DP).
/// - **20240702** — AZ N, Shanghai: network access abnormalities; VMs
///   unreachable (~70 min) plus heavy packet loss around the window.
/// - **20250107** — Shanghai region: purchase/modify APIs broken for ~4
///   hours; **existing VMs unaffected** — only CDI-C can see it.
pub fn fig5_incident_days(seed: u64) -> Vec<IncidentDay> {
    let build = |label: &'static str, f: &dyn Fn(&mut SimWorld)| -> IncidentDay {
        let mut world = SimWorld::new(default_fleet(), seed);
        background_faults(&mut world, 0, DAY, &BackgroundRates::quiet());
        f(&mut world);
        IncidentDay { label, world }
    };
    vec![
        build("Daily", &|_| {}),
        build("20240425", &|w| {
            // AZ-wide outage from 09:10 to 11:20. ap-singapore sorts first
            // alphabetically; its first AZ has index 0.
            w.inject(FaultInjection::new(
                FaultKind::NcDown,
                FaultTarget::Az(0),
                9 * HOUR + 10 * MINUTE,
                11 * HOUR + 20 * MINUTE,
            ));
        }),
        build("20240702", &|w| {
            // Network abnormalities in one Shanghai AZ: unreachable VMs for
            // ~70 minutes plus packet loss bracketing the outage.
            let az = 4; // cn-shanghai-a in the sorted AZ list
            w.inject(FaultInjection::new(
                FaultKind::VmDown,
                FaultTarget::Az(az),
                18 * HOUR + 30 * MINUTE,
                19 * HOUR + 40 * MINUTE,
            ));
            w.inject(FaultInjection::new(
                FaultKind::PacketLoss { rate: 0.5 },
                FaultTarget::Az(az),
                18 * HOUR,
                21 * HOUR,
            ));
        }),
        build("20250107", &|w| {
            // Control-plane-only incident in the early evening (the
            // business peak, as in Case 2).
            w.inject(FaultInjection::new(
                FaultKind::ControlPlaneOutage,
                FaultTarget::Global,
                17 * HOUR,
                21 * HOUR,
            ));
        }),
    ]
}

// ---------------------------------------------------------------------------
// Fig. 6: Fiscal Year 2024 trend
// ---------------------------------------------------------------------------

/// Per-day fault rates for the FY2024 scenario: the year starts at
/// `quiet()`-like levels and governance work drives each category down by
/// the paper's reported reductions (−40% U, −80% P, −35% C).
pub fn fy2024_rates(day: usize, total_days: usize) -> BackgroundRates {
    let f = day as f64 / (total_days.max(2) - 1) as f64;
    let base = BackgroundRates::quiet();
    BackgroundRates {
        unavailability: base.unavailability * (1.0 - 0.40 * f),
        performance: base.performance * (1.0 - 0.80 * f),
        control_plane: base.control_plane * (1.0 - 0.35 * f),
    }
}

/// Build the FY2024 world: `total_days` of background faults with declining
/// rates.
pub fn fig6_fy2024(seed: u64, total_days: usize) -> SimWorld {
    fig6_fy2024_selective(seed, total_days, [true, true, true])
}

/// FY2024 with governance applied selectively per category
/// `[unavailability, performance, control-plane]` — the ablation that
/// attributes each sub-metric's reduction to its own mitigation strategy
/// (fault prediction / virtualization optimization / redundant deployment
/// in the paper's Section VI-A). Categories with `false` keep their initial
/// fault rate all year.
pub fn fig6_fy2024_selective(seed: u64, total_days: usize, govern: [bool; 3]) -> SimWorld {
    let mut world = SimWorld::new(default_fleet(), seed);
    let base = BackgroundRates::quiet();
    for d in 0..total_days {
        let declining = fy2024_rates(d, total_days);
        let rates = BackgroundRates {
            unavailability: if govern[0] { declining.unavailability } else { base.unavailability },
            performance: if govern[1] { declining.performance } else { base.performance },
            control_plane: if govern[2] { declining.control_plane } else { base.control_plane },
        };
        let start = d as i64 * DAY;
        background_faults(&mut world, start, start + DAY, &rates);
    }
    world
}

// ---------------------------------------------------------------------------
// Fig. 8: architecture comparison (Case 5)
// ---------------------------------------------------------------------------

/// The Fig. 8 world: two NC pools (homogeneous vs hybrid) observed for
/// `total_days`. From `bug_start_day` the hybrid pool's `modelB` NCs hit the
/// core-overlap contention bug; mitigation (lock + migrate + rollback)
/// progressively removes it until `converge_day`.
#[derive(Debug)]
pub struct ArchitectureScenario {
    /// The world (both pools in one fleet).
    pub world: SimWorld,
    /// NC ids in the homogeneous pool.
    pub homogeneous_ncs: Vec<u64>,
    /// NC ids in the hybrid pool.
    pub hybrid_ncs: Vec<u64>,
}

/// Build the Case 5 scenario.
pub fn fig8_architecture(
    seed: u64,
    total_days: usize,
    bug_start_day: usize,
    peak_day: usize,
    converge_day: usize,
) -> ArchitectureScenario {
    // One region, two clusters: cluster 0 stays homogeneous, cluster 1 is
    // the hybrid rollout. Models alternate so half the hybrid NCs are the
    // affected modelB.
    let mut fleet = Fleet::build(&FleetConfig {
        regions: vec!["cn-hangzhou".into()],
        azs_per_region: 1,
        clusters_per_az: 2,
        ncs_per_cluster: 8,
        vms_per_nc: 8,
        nc_cores: 104,
        machine_models: vec!["modelA".into(), "modelB".into()],
        arch: DeploymentArch::Hybrid,
    });
    let (mut homogeneous, mut hybrid) = (Vec::new(), Vec::new());
    let ncs: Vec<(u64, String)> =
        fleet.ncs().iter().map(|n| (n.id, n.cluster.clone())).collect();
    for (id, cluster) in ncs {
        if cluster.ends_with("c0") {
            // Ids come straight from `fleet.ncs()`, so this cannot fail;
            // a node that somehow refuses the arch just stays hybrid.
            if fleet.set_arch(id, DeploymentArch::HomogeneousShared).is_ok() {
                homogeneous.push(id);
            }
        } else {
            hybrid.push(id);
        }
    }
    let mut world = SimWorld::new(fleet, seed);
    background_faults(&mut world, 0, total_days as i64 * DAY, &BackgroundRates::quiet());

    // The incompatibility bug: contention on hybrid modelB NCs. Intensity
    // ramps up from bug_start_day to peak_day (expansion of the hybrid
    // rollout), then mitigation shrinks it to zero by converge_day.
    let model_b: Vec<u64> = hybrid
        .iter()
        .copied()
        .filter(|&id| world.fleet.nc(id).is_some_and(|n| n.machine_model == "modelB"))
        .collect();
    let mut injections = Vec::new();
    for d in bug_start_day..converge_day {
        let intensity = if d < peak_day {
            (d - bug_start_day + 1) as f64 / (peak_day - bug_start_day) as f64
        } else {
            1.0 - (d - peak_day) as f64 / (converge_day - peak_day) as f64
        };
        // Each affected NC contends for `intensity`-scaled hours that day.
        for &nc in &model_b {
            let hours = (intensity * 10.0).round() as i64;
            if hours == 0 {
                continue;
            }
            let at = d as i64 * DAY + 9 * HOUR;
            injections.push(FaultInjection::new(
                FaultKind::CpuContention { steal: 0.35 },
                FaultTarget::Nc(nc),
                at,
                at + hours * HOUR,
            ));
        }
    }
    world.inject_all(injections);
    ArchitectureScenario { world, homogeneous_ncs: homogeneous, hybrid_ncs: hybrid }
}

// ---------------------------------------------------------------------------
// Fig. 9: event-level CDI (Cases 6 and 7)
// ---------------------------------------------------------------------------

/// Fig. 9(a): a month of low-level `vm_allocation_failed` background, with
/// the scheduler data-corruption change spiking it on `spike_day` and fixed
/// the next day.
pub fn fig9a_allocation(seed: u64, total_days: usize, spike_day: usize) -> SimWorld {
    let mut world = SimWorld::new(default_fleet(), seed);
    let n_vms = world.fleet.vms().len() as u64;
    let mut injections = Vec::new();
    for d in 0..total_days {
        let day_start = d as i64 * DAY;
        // Background: roughly 2% of VMs see a brief allocation failure.
        for vm in 0..n_vms {
            if unit(seed, vm ^ 0xA11, day_start) < 0.02 {
                let at = day_start + (unit(seed, vm ^ 0xA12, day_start) * DAY as f64) as i64;
                injections.push(FaultInjection::new(
                    FaultKind::SchedulerDataCorruption,
                    FaultTarget::Vm(vm),
                    at,
                    (at + 30 * MINUTE).min(day_start + DAY),
                ));
            }
        }
        // The spike: the corrupted scheduler over-commits ~35% of VMs for
        // most of the day.
        if d == spike_day {
            for vm in 0..n_vms {
                if unit(seed, vm ^ 0xA13, day_start) < 0.35 {
                    injections.push(FaultInjection::new(
                        FaultKind::SchedulerDataCorruption,
                        FaultTarget::Vm(vm),
                        day_start + 2 * HOUR,
                        day_start + 20 * HOUR,
                    ));
                }
            }
        }
    }
    world.inject_all(injections);
    world
}

/// Fig. 9(b): the power-collector zeroing bug. The `inspect_cpu_power_tdp`
/// event fires when NC power approaches TDP; the bug (power reads zero)
/// rolls out across NCs from `decline_day`, bottoms out, and is fixed from
/// `fix_day`.
pub fn fig9b_power(seed: u64, total_days: usize, decline_day: usize, fix_day: usize) -> SimWorld {
    let mut world = SimWorld::new(default_fleet(), seed);
    let nc_count = world.fleet.ncs().len() as u64;
    let mut injections = Vec::new();
    for d in decline_day..fix_day {
        // Coverage of the buggy collector grows linearly to 100%.
        let coverage =
            ((d - decline_day + 1) as f64 / (fix_day - decline_day) as f64).min(1.0);
        for nc in 0..nc_count {
            if unit(seed, nc ^ 0xB01, d as i64) < coverage {
                injections.push(FaultInjection::new(
                    FaultKind::PowerZeroBug,
                    FaultTarget::Nc(nc),
                    d as i64 * DAY,
                    (d + 1) as i64 * DAY,
                ));
            }
        }
    }
    let _ = total_days;
    world.inject_all(injections);
    world
}

// ---------------------------------------------------------------------------
// Table V / Fig. 11: operation-action A/B test (Case 8)
// ---------------------------------------------------------------------------

/// One A/B trial: a VM that was live-migrated by one of the candidate
/// actions, with its post-action damage profile.
#[derive(Debug, Clone)]
pub struct AbTrial {
    /// The VM.
    pub vm: VmId,
    /// Which action (0 = A, 1 = B, 2 = C).
    pub action: usize,
    /// Start of the 2-day observation window.
    pub window_start: i64,
}

/// The Case 8 A/B world: over `months` months, `nc_down_prediction` fires
/// repeatedly; each hit live-migrates the NC's VMs with one of three
/// candidate actions. The actions differ only in migration parameters, so
/// only the **performance** damage differs (paper: mean PI 0.40 / 0.08 /
/// 0.42 after normalization); unavailability and control-plane damage is
/// statistically identical across actions (Table V: p = 0.47 / 0.89).
#[derive(Debug)]
pub struct AbTestScenario {
    /// The world with all post-action damage injected.
    pub world: SimWorld,
    /// The trials (VM, action, window).
    pub trials: Vec<AbTrial>,
    /// Observation window length (ms): the paper's "subsequent two days".
    pub window: i64,
}

/// Build the A/B scenario. `trials_per_action` VMs end up in each arm.
pub fn table5_abtest(seed: u64, trials_per_action: usize) -> AbTestScenario {
    let mut world = SimWorld::new(default_fleet(), seed);
    let window = 2 * DAY;
    // Relative performance-damage intensity per action, tuned to the
    // paper's normalized means 0.40 / 0.08 / 0.42 (B ≈ 5x better, C
    // slightly worse than A): hours of residual degradation per 2-day
    // window. The A-C gap is a touch wider than the paper's 5% so the
    // rank-based post-hoc can resolve it at our sample sizes (the paper
    // had months of production trials).
    let mean_hours = [8.0, 1.6, 8.8];
    let n_vms = world.fleet.vms().len();
    let mut trials = Vec::new();
    let mut injections = Vec::new();
    for i in 0..trials_per_action * 3 {
        let action = i % 3;
        let vm = (i % n_vms) as VmId;
        // Trials are spread over three months, one firing every ~7 hours.
        // The spacing is deliberately *not* a divisor of 24 h so the three
        // arms rotate through all day phases instead of each being pinned
        // to one (which would confound the arms with daily seasonality).
        let window_start = (i as i64) * 7 * HOUR;
        // Post-migration performance damage: slow IO with duration noise
        // (±20%) around the action's mean. Factor 8 keeps the degraded
        // latency above the extraction threshold at every seasonal phase.
        let jitter = 0.8 + 0.4 * unit(seed, vm ^ (0xC0 + action as u64), window_start);
        let dur = (mean_hours[action] * jitter * HOUR as f64) as i64;
        injections.push(FaultInjection::new(
            FaultKind::SlowIo { factor: 8.0 },
            FaultTarget::Vm(vm),
            window_start + 2 * HOUR,
            window_start + 2 * HOUR + dur.max(10 * MINUTE),
        ));
        // The live migration itself: a brief, action-independent stall.
        let stall = 2 * MINUTE + (unit(seed, vm ^ 0xC9, window_start) * 3.0) as i64 * MINUTE;
        injections.push(FaultInjection::new(
            FaultKind::VmDown,
            FaultTarget::Vm(vm),
            window_start + HOUR,
            window_start + HOUR + stall,
        ));
        // Control-plane noise, also action-independent.
        if unit(seed, vm ^ 0xCA, window_start) < 0.3 {
            let at = window_start + 10 * HOUR;
            injections.push(FaultInjection::new(
                FaultKind::ControlPlaneOutage,
                FaultTarget::Vm(vm),
                at,
                at + 20 * MINUTE,
            ));
        }
        trials.push(AbTrial { vm, action, window_start });
    }
    world.inject_all(injections);
    AbTestScenario { world, trials, window }
}

// ---------------------------------------------------------------------------
// Fig. 2: ticket corpus
// ---------------------------------------------------------------------------

/// The Fig. 2 world: 18 (compressed) months of faults whose category mix,
/// after per-category report propensities, lands near the paper's ticket
/// distribution (27% unavailability / 44% performance / 29% control-plane).
pub fn fig2_ticket_world(seed: u64, days: usize) -> SimWorld {
    let mut world = SimWorld::new(default_fleet(), seed);
    // With propensities (0.9, 0.5, 0.7), fault counts proportional to
    // (27/0.9, 44/0.5, 29/0.7) = (30, 88, 41.4) yield the target ticket mix.
    let per_day = BackgroundRates {
        unavailability: 0.055,
        performance: 0.161,
        control_plane: 0.076,
    };
    background_faults(&mut world, 0, days as i64 * DAY, &per_day);
    world
}

// ---------------------------------------------------------------------------
// Correlated batch-outage generators (BSODiag direction)
// ---------------------------------------------------------------------------

/// Inject a staggered bad-rollout wave: visit `clusters` in deploy order,
/// striking every host of each cluster with `kind` for `duration` ms,
/// starting `stagger` ms apart. Returns the `(cluster, start, end)`
/// schedule of clusters that resolved to at least one host — the caller's
/// ground truth. Unknown cluster names are skipped, matching the
/// empty-rollup convention of [`SimWorld::inject_scope`].
pub fn rollout_wave(
    world: &mut SimWorld,
    clusters: &[String],
    kind: FaultKind,
    t0: i64,
    stagger: i64,
    duration: i64,
) -> Vec<(String, i64, i64)> {
    let mut schedule = Vec::new();
    for (i, cluster) in clusters.iter().enumerate() {
        let start = t0 + i as i64 * stagger;
        let end = start + duration;
        let struck = world.inject_scope(
            kind.clone(),
            &crate::topology::Scope::Cluster(cluster.clone()),
            start,
            end,
        );
        if struck > 0 {
            schedule.push((cluster.clone(), start, end));
        }
    }
    schedule
}

/// A shared power-domain event: every host under one AZ loses power
/// simultaneously over `[t0, end)`. Returns the number of hosts struck
/// (zero for an unknown AZ name).
pub fn fail_power_domain(world: &mut SimWorld, az: &str, t0: i64, end: i64) -> usize {
    world.inject_scope(
        FaultKind::NcDown,
        &crate::topology::Scope::Az(az.to_string()),
        t0,
        end,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::DamageCategory;

    #[test]
    fn background_rates_scale() {
        let r = BackgroundRates::quiet().scaled(2.0);
        assert!((r.performance - 0.30).abs() < 1e-12);
    }

    #[test]
    fn background_faults_fill_categories() {
        let mut w = SimWorld::new(default_fleet(), 11);
        background_faults(&mut w, 0, 30 * DAY, &BackgroundRates::quiet());
        let cats: Vec<DamageCategory> =
            w.faults().iter().map(|f| f.kind.category()).collect();
        assert!(cats.contains(&DamageCategory::Unavailability));
        assert!(cats.contains(&DamageCategory::Performance));
        assert!(cats.contains(&DamageCategory::ControlPlane));
        // All faults inside the window.
        assert!(w.faults().iter().all(|f| f.range.start >= 0 && f.range.end <= 30 * DAY));
    }

    #[test]
    fn fig5_has_four_labeled_days() {
        let days = fig5_incident_days(3);
        let labels: Vec<&str> = days.iter().map(|d| d.label).collect();
        assert_eq!(labels, vec!["Daily", "20240425", "20240702", "20250107"]);
        // The control-plane day carries a global control-plane fault.
        assert!(days[3]
            .world
            .faults()
            .iter()
            .any(|f| matches!(f.kind, FaultKind::ControlPlaneOutage)
                && f.target == FaultTarget::Global));
        // The 20240425 day has an AZ-scoped NC outage.
        assert!(days[1]
            .world
            .faults()
            .iter()
            .any(|f| matches!(f.kind, FaultKind::NcDown)));
    }

    #[test]
    fn fy2024_rates_decline_by_paper_percentages() {
        let first = fy2024_rates(0, 365);
        let last = fy2024_rates(364, 365);
        assert!((last.unavailability / first.unavailability - 0.60).abs() < 1e-9);
        assert!((last.performance / first.performance - 0.20).abs() < 1e-9);
        assert!((last.control_plane / first.control_plane - 0.65).abs() < 1e-9);
    }

    #[test]
    fn fig8_pools_are_disjoint_and_bug_targets_model_b_hybrid() {
        let s = fig8_architecture(5, 40, 13, 20, 28);
        assert!(!s.homogeneous_ncs.is_empty());
        assert!(!s.hybrid_ncs.is_empty());
        assert!(s.homogeneous_ncs.iter().all(|id| !s.hybrid_ncs.contains(id)));
        // NC-scoped contention is the injected bug; VM-scoped contention can
        // also occur as ordinary background noise.
        let contention: Vec<&FaultInjection> = s
            .world
            .faults()
            .iter()
            .filter(|f| {
                matches!(f.kind, FaultKind::CpuContention { .. })
                    && matches!(f.target, FaultTarget::Nc(_))
            })
            .collect();
        assert!(!contention.is_empty());
        for f in &contention {
            let FaultTarget::Nc(nc) = f.target else {
                panic!("contention must be NC-scoped")
            };
            assert!(s.hybrid_ncs.contains(&nc));
            assert_eq!(s.world.fleet.nc(nc).unwrap().machine_model, "modelB");
            // Bug active only in [13, 28) days.
            assert!(f.range.start >= 13 * DAY && f.range.end <= 28 * DAY);
        }
    }

    #[test]
    fn fig9a_spike_day_dominates() {
        let w = fig9a_allocation(9, 30, 14);
        let per_day = |d: i64| {
            w.faults()
                .iter()
                .filter(|f| f.range.start >= d * DAY && f.range.start < (d + 1) * DAY)
                .count()
        };
        let spike = per_day(14);
        let typical = per_day(10).max(1);
        assert!(spike > 5 * typical, "spike {spike} vs typical {typical}");
    }

    #[test]
    fn fig9b_coverage_grows_then_fixes() {
        let w = fig9b_power(4, 30, 13, 18);
        let per_day = |d: i64| {
            w.faults()
                .iter()
                .filter(|f| {
                    matches!(f.kind, FaultKind::PowerZeroBug) && f.range.start == d * DAY
                })
                .count()
        };
        assert_eq!(per_day(12), 0);
        assert!(per_day(17) > per_day(13), "coverage grows");
        assert_eq!(per_day(18), 0, "fixed");
    }

    #[test]
    fn abtest_balanced_arms_with_distinct_performance() {
        let s = table5_abtest(21, 60);
        assert_eq!(s.trials.len(), 180);
        for a in 0..3 {
            assert_eq!(s.trials.iter().filter(|t| t.action == a).count(), 60);
        }
        // Mean slow-io duration per arm ordered like the paper: B << A < C.
        let mean_dur = |action: usize| -> f64 {
            let trials: Vec<&AbTrial> =
                s.trials.iter().filter(|t| t.action == action).collect();
            let total: i64 = trials
                .iter()
                .map(|t| {
                    s.world
                        .faults()
                        .iter()
                        .filter(|f| {
                            matches!(f.kind, FaultKind::SlowIo { .. })
                                && f.target == FaultTarget::Vm(t.vm)
                                && f.range.start >= t.window_start
                                && f.range.start < t.window_start + s.window
                        })
                        .map(|f| f.range.end - f.range.start)
                        .sum::<i64>()
                })
                .sum();
            total as f64 / trials.len() as f64
        };
        let (a, b, c) = (mean_dur(0), mean_dur(1), mean_dur(2));
        assert!(b < a * 0.4, "B ({b}) must be far below A ({a})");
        assert!(c > a, "C ({c}) slightly worse than A ({a})");
    }

    #[test]
    fn fig2_world_mixes_categories_toward_target() {
        let w = fig2_ticket_world(2, 90);
        let count = |c: DamageCategory| {
            w.faults().iter().filter(|f| f.kind.category() == c).count() as f64
        };
        let (u, p, cp) = (
            count(DamageCategory::Unavailability),
            count(DamageCategory::Performance),
            count(DamageCategory::ControlPlane),
        );
        let total = u + p + cp;
        assert!(total > 100.0, "enough faults to be stable: {total}");
        // Fault mix near (30, 88, 41)/159.
        assert!((u / total - 0.19).abs() < 0.06, "u share {}", u / total);
        assert!((p / total - 0.55).abs() < 0.08, "p share {}", p / total);
        assert!((cp / total - 0.26).abs() < 0.06, "cp share {}", cp / total);
    }

    #[test]
    fn rollout_wave_staggers_clusters_in_order() {
        let fleet = default_fleet();
        let mut clusters = fleet.cluster_names();
        clusters.truncate(3);
        clusters.push("no-such-cluster".to_string());
        let mut w = SimWorld::new(fleet, 7);
        let schedule = rollout_wave(
            &mut w,
            &clusters,
            FaultKind::CpuContention { steal: 0.6 },
            HOUR,
            45 * MINUTE,
            25 * MINUTE,
        );
        // Unknown cluster skipped; the three real ones keep deploy order.
        assert_eq!(schedule.len(), 3);
        for (i, (name, start, end)) in schedule.iter().enumerate() {
            assert_eq!(name, &clusters[i]);
            assert_eq!(*start, HOUR + i as i64 * 45 * MINUTE);
            assert_eq!(*end, start + 25 * MINUTE);
        }
        // Every injected fault lands inside its cluster's window.
        assert!(w.faults().iter().all(|f| schedule
            .iter()
            .any(|(_, s, e)| f.range.start == *s && f.range.end == *e)));
    }

    #[test]
    fn power_domain_event_strikes_every_host_in_the_az() {
        let fleet = default_fleet();
        let az = fleet.ncs()[0].az.clone();
        let ncs_in_az = fleet.ncs().iter().filter(|nc| nc.az == az).count();
        let mut w = SimWorld::new(fleet, 7);
        let struck = fail_power_domain(&mut w, &az, 2 * HOUR, 2 * HOUR + 35 * MINUTE);
        assert_eq!(struck, ncs_in_az);
        assert!(w
            .faults()
            .iter()
            .all(|f| matches!(f.kind, FaultKind::NcDown)
                && f.range.start == 2 * HOUR
                && f.range.end == 2 * HOUR + 35 * MINUTE));
        // Unknown AZ: nothing injected.
        assert_eq!(fail_power_domain(&mut w, "nope", 0, HOUR), 0);
    }
}
