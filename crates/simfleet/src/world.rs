//! `SimWorld`: the queryable simulated production environment.
//!
//! A world is a fleet plus a set of injected faults and a seed. CloudBot's
//! collector queries it for metric series, log lines, and control-plane
//! operation outcomes; experiments additionally read the ground-truth
//! damage intervals to validate what CDI reports.

use serde::{Deserialize, Serialize};

use crate::chaos::{ChaosConfig, ChaosEvent};
use crate::faults::{DamageCategory, FaultInjection, FaultKind, FaultTarget, SimRange};
use crate::telemetry::{apply_fault, baseline, unit, Metric};
use crate::topology::{Fleet, NcId, VmId};

/// A raw log line as the collector would scrape it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogLine {
    /// Timestamp (ms).
    pub time: i64,
    /// Emitting VM, if VM-scoped.
    pub vm: Option<VmId>,
    /// Emitting NC, if host-scoped.
    pub nc: Option<NcId>,
    /// Raw text.
    pub text: String,
}

/// Outcome of one simulated control-plane operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlOp {
    /// Timestamp (ms).
    pub time: i64,
    /// The VM the operation targeted.
    pub vm: VmId,
    /// Operation name: `start`, `stop`, `resize`, `release`.
    pub op: &'static str,
    /// Whether it succeeded.
    pub ok: bool,
}

/// Index of fault positions bucketed by target scope, so that per-sample
/// fault lookups touch only the handful of faults that can apply to a
/// target instead of scanning the full injection list (the year-long
/// scenarios inject tens of thousands of faults).
#[derive(Debug, Clone, Default)]
struct FaultIndex {
    by_vm: std::collections::HashMap<VmId, Vec<usize>>,
    by_nc: std::collections::HashMap<NcId, Vec<usize>>,
    by_az: std::collections::HashMap<u32, Vec<usize>>,
    global: Vec<usize>,
}

/// The simulated world.
#[derive(Debug, Clone)]
pub struct SimWorld {
    /// The fleet (mutable: operation actions migrate/lock/rollback).
    pub fleet: Fleet,
    faults: Vec<FaultInjection>,
    index: FaultIndex,
    /// AZ name → index cache (the AZ set is fixed at fleet build time).
    az_map: std::collections::HashMap<String, u32>,
    seed: u64,
    chaos: Option<ChaosConfig>,
}

impl SimWorld {
    /// Wrap a fleet with a seed.
    pub fn new(fleet: Fleet, seed: u64) -> Self {
        let mut azs: Vec<String> = fleet.ncs().iter().map(|n| n.az.clone()).collect();
        azs.sort();
        azs.dedup();
        let az_map = azs.into_iter().enumerate().map(|(i, a)| (a, i as u32)).collect();
        SimWorld {
            fleet,
            faults: Vec::new(),
            index: FaultIndex::default(),
            az_map,
            seed,
            chaos: None,
        }
    }

    /// World seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Attach (or clear) a malformed-telemetry injection plan. The
    /// collector-facing event stream of a chaotic world gains exactly
    /// [`ChaosConfig::total`] bad events per extraction window.
    pub fn set_chaos(&mut self, chaos: Option<ChaosConfig>) {
        self.chaos = chaos;
    }

    /// The active chaos plan, if any.
    pub fn chaos(&self) -> Option<&ChaosConfig> {
        self.chaos.as_ref()
    }

    /// The malformed events the chaos plan injects for `[start, end)`
    /// (empty when no plan is attached). Deterministic per plan and window.
    pub fn chaos_events(&self, start: i64, end: i64) -> Vec<ChaosEvent> {
        match &self.chaos {
            Some(cfg) => {
                let vms: Vec<VmId> = self.fleet.vms().iter().map(|v| v.id).collect();
                cfg.events(&vms, start, end)
            }
            None => Vec::new(),
        }
    }

    /// Inject a fault.
    pub fn inject(&mut self, fault: FaultInjection) {
        let i = self.faults.len();
        match fault.target {
            FaultTarget::Vm(v) => self.index.by_vm.entry(v).or_default().push(i),
            FaultTarget::Nc(n) => self.index.by_nc.entry(n).or_default().push(i),
            FaultTarget::Az(a) => self.index.by_az.entry(a).or_default().push(i),
            FaultTarget::Global => self.index.global.push(i),
        }
        self.faults.push(fault);
    }

    /// Inject many faults.
    pub fn inject_all(&mut self, faults: impl IntoIterator<Item = FaultInjection>) {
        for f in faults {
            self.inject(f);
        }
    }

    /// Topology-aware injection: strike every host inside a hierarchy
    /// scope. `Region`/`Az`/`Cluster` scopes expand to one injection per
    /// contained NC (so the fault rides the *hosts* and the usual NC → VM
    /// damage rules apply, host-only telemetry included); an `Nc` scope
    /// injects that host; a `Vm` scope injects the single VM. Returns the
    /// number of injections added — zero for unknown names or ids, matching
    /// the empty-rollup convention of [`Fleet::vms_in`].
    pub fn inject_scope(
        &mut self,
        kind: FaultKind,
        scope: &crate::topology::Scope,
        start: i64,
        end: i64,
    ) -> usize {
        if let crate::topology::Scope::Vm(vm) = scope {
            if self.fleet.vm(*vm).is_none() {
                return 0;
            }
            self.inject(FaultInjection::new(kind, FaultTarget::Vm(*vm), start, end));
            return 1;
        }
        let ncs = self.fleet.ncs_in(scope);
        let n = ncs.len();
        for nc in ncs {
            self.inject(FaultInjection::new(kind.clone(), FaultTarget::Nc(nc), start, end));
        }
        n
    }

    /// All injected faults.
    pub fn faults(&self) -> &[FaultInjection] {
        &self.faults
    }

    /// Indices of faults that can apply to a VM under its *current*
    /// placement, pre-filtered to those overlapping `[start, end)`.
    fn candidate_faults_for_vm(&self, vm: VmId, start: i64, end: i64) -> Vec<usize> {
        let window = SimRange::new(start, end);
        let mut out = Vec::new();
        let mut push_all = |bucket: Option<&Vec<usize>>| {
            if let Some(list) = bucket {
                for &i in list {
                    if self.faults[i].range.overlaps(&window) {
                        out.push(i);
                    }
                }
            }
        };
        push_all(self.index.by_vm.get(&vm));
        if let Some(host) = self.fleet.host_of(vm) {
            push_all(self.index.by_nc.get(&host.id));
            if let Some(az) = self.az_index(&host.az) {
                push_all(self.index.by_az.get(&az));
            }
        }
        push_all(Some(&self.index.global));
        out
    }

    /// Indices of faults that can apply to an NC, pre-filtered by overlap.
    fn candidate_faults_for_nc(&self, nc: NcId, start: i64, end: i64) -> Vec<usize> {
        let window = SimRange::new(start, end);
        let mut out = Vec::new();
        let mut push_all = |bucket: Option<&Vec<usize>>| {
            if let Some(list) = bucket {
                for &i in list {
                    if self.faults[i].range.overlaps(&window) {
                        out.push(i);
                    }
                }
            }
        };
        push_all(self.index.by_nc.get(&nc));
        if let Some(n) = self.fleet.nc(nc) {
            if let Some(az) = self.az_index(&n.az) {
                push_all(self.index.by_az.get(&az));
            }
        }
        push_all(Some(&self.index.global));
        out
    }

    /// Sorted, deduplicated AZ names (the index space of
    /// [`FaultTarget::Az`]).
    pub fn az_names(&self) -> Vec<String> {
        let mut names: Vec<(&u32, &String)> =
            self.az_map.iter().map(|(a, i)| (i, a)).collect();
        names.sort();
        names.into_iter().map(|(_, a)| a.clone()).collect()
    }

    fn az_index(&self, az: &str) -> Option<u32> {
        self.az_map.get(az).copied()
    }

    /// Does a fault apply to this VM (resolving NC/AZ/global scopes through
    /// the current placement)?
    fn applies_to_vm(&self, f: &FaultInjection, vm: VmId) -> bool {
        match f.target {
            FaultTarget::Vm(v) => v == vm,
            FaultTarget::Nc(nc) => self.fleet.vm(vm).is_some_and(|v| v.nc == nc),
            FaultTarget::Az(az) => self
                .fleet
                .host_of(vm)
                .and_then(|n| self.az_index(&n.az))
                .is_some_and(|i| i == az),
            FaultTarget::Global => true,
        }
    }

    /// Faults active on a VM at time `t`.
    pub fn active_faults_on_vm(&self, vm: VmId, t: i64) -> Vec<&FaultInjection> {
        self.faults
            .iter()
            .filter(|f| f.range.contains(t) && self.applies_to_vm(f, vm))
            .collect()
    }

    /// A VM-scoped metric series over `[start, end)` at `step_ms`
    /// resolution, with all active fault distortions applied.
    pub fn vm_metric_series(
        &self,
        vm: VmId,
        metric: Metric,
        start: i64,
        end: i64,
        step_ms: i64,
    ) -> Vec<(i64, f64)> {
        assert!(step_ms > 0, "step must be positive");
        let candidates = self.candidate_faults_for_vm(vm, start, end);
        let mut out = Vec::with_capacity(((end - start) / step_ms).max(0) as usize);
        let mut t = start;
        while t < end {
            let mut v = baseline(metric, self.seed, vm, t);
            for &i in &candidates {
                let f = &self.faults[i];
                if f.range.contains(t) {
                    v = apply_fault(metric, v, &f.kind);
                }
            }
            out.push((t, v));
            t += step_ms;
        }
        out
    }

    /// An NC-scoped metric series (e.g. power) with fault distortions.
    pub fn nc_metric_series(
        &self,
        nc: NcId,
        metric: Metric,
        start: i64,
        end: i64,
        step_ms: i64,
    ) -> Vec<(i64, f64)> {
        assert!(step_ms > 0, "step must be positive");
        let candidates = self.candidate_faults_for_nc(nc, start, end);
        let mut out = Vec::with_capacity(((end - start) / step_ms).max(0) as usize);
        // Salt NC ids away from VM ids in the noise space.
        let salt = nc ^ 0xA5A5_0000_0000_0000;
        let mut t = start;
        while t < end {
            let mut v = baseline(metric, self.seed, salt, t);
            for &i in &candidates {
                let f = &self.faults[i];
                if f.range.contains(t) {
                    v = apply_fault(metric, v, &f.kind);
                }
            }
            out.push((t, v));
            t += step_ms;
        }
        out
    }

    /// Log lines emitted by faults in `[start, end)`, time-sorted.
    pub fn log_lines(&self, start: i64, end: i64) -> Vec<LogLine> {
        const MIN: i64 = 60_000;
        let mut out = Vec::new();
        for f in &self.faults {
            let lo = f.range.start.max(start);
            let hi = f.range.end.min(end);
            let (vm, nc) = match f.target {
                FaultTarget::Vm(v) => (Some(v), self.fleet.vm(v).map(|x| x.nc)),
                FaultTarget::Nc(n) => (None, Some(n)),
                _ => (None, None),
            };
            match &f.kind {
                FaultKind::NicFlapping => {
                    // One link-down line per active minute.
                    let mut t = lo - lo.rem_euclid(MIN) + MIN;
                    while t < hi {
                        out.push(LogLine {
                            time: t,
                            vm,
                            nc,
                            text: "eth0 NIC Link is Down".into(),
                        });
                        t += MIN;
                    }
                }
                FaultKind::GpuDrop
                    if f.range.start >= start && f.range.start < end => {
                        out.push(LogLine {
                            time: f.range.start,
                            vm,
                            nc,
                            text: "GPU has fallen off the bus".into(),
                        });
                    }
                FaultKind::NcDown
                    if f.range.start >= start && f.range.start < end => {
                        out.push(LogLine {
                            time: f.range.start,
                            vm,
                            nc,
                            text: "kernel panic - not syncing".into(),
                        });
                    }
                FaultKind::DdosBlackhole => {
                    if f.range.start >= start && f.range.start < end {
                        out.push(LogLine {
                            time: f.range.start,
                            vm,
                            nc,
                            text: "ddos_blackhole_add".into(),
                        });
                    }
                    if f.range.end >= start && f.range.end < end {
                        out.push(LogLine {
                            time: f.range.end,
                            vm,
                            nc,
                            text: "ddos_blackhole_del".into(),
                        });
                    }
                }
                FaultKind::SchedulerDataCorruption => {
                    // The overflow VM logs an allocation failure every 5 min.
                    let mut t = lo - lo.rem_euclid(5 * MIN) + 5 * MIN;
                    while t < hi {
                        out.push(LogLine {
                            time: t,
                            vm,
                            nc,
                            text: "vm allocation failed: insufficient exclusive cores".into(),
                        });
                        t += 5 * MIN;
                    }
                }
                _ => {}
            }
        }
        out.sort_by_key(|l| l.time);
        out
    }

    /// Simulated control-plane operations: each VM attempts one operation
    /// per `interval_ms`; the call fails while a control-plane fault covers
    /// the VM (plus a tiny deterministic background failure rate).
    pub fn control_ops(&self, start: i64, end: i64, interval_ms: i64) -> Vec<ControlOp> {
        assert!(interval_ms > 0);
        const OPS: [&str; 4] = ["start", "stop", "resize", "release"];
        let mut out = Vec::new();
        for vm in self.fleet.vms() {
            let candidates = self.candidate_faults_for_vm(vm.id, start, end);
            let mut t = start + (vm.id as i64 % interval_ms.max(1));
            while t < end {
                let outage = candidates.iter().any(|&i| {
                    let f = &self.faults[i];
                    matches!(f.kind, FaultKind::ControlPlaneOutage) && f.range.contains(t)
                });
                // Background noise failure: 0.005%.
                let background = unit(self.seed, vm.id.wrapping_mul(31), t) < 5e-5;
                let op = OPS[((t / interval_ms) as usize + vm.id as usize) % OPS.len()];
                out.push(ControlOp { time: t, vm: vm.id, op, ok: !(outage || background) });
                t += interval_ms;
            }
        }
        out.sort_by_key(|o| (o.time, o.vm));
        out
    }

    /// Ground-truth damage intervals for a VM (category, range) — what an
    /// oracle would say the stability impact was. Used by experiments to
    /// validate CDI, never by the pipeline itself.
    pub fn ground_truth_vm(&self, vm: VmId) -> Vec<(DamageCategory, SimRange)> {
        self.faults
            .iter()
            .filter(|f| self.applies_to_vm(f, vm))
            .map(|f| (f.kind.category(), f.range))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{DeploymentArch, FleetConfig};

    fn world() -> SimWorld {
        let fleet = Fleet::build(&FleetConfig {
            regions: vec!["r1".into(), "r2".into()],
            azs_per_region: 2,
            clusters_per_az: 1,
            ncs_per_cluster: 2,
            vms_per_nc: 3,
            nc_cores: 16,
            machine_models: vec!["mA".into()],
            arch: DeploymentArch::Hybrid,
        });
        SimWorld::new(fleet, 42)
    }

    const HOUR: i64 = 3_600_000;

    #[test]
    fn series_deterministic_per_seed() {
        let w = world();
        let a = w.vm_metric_series(0, Metric::ReadLatencyMs, 0, HOUR, 60_000);
        let b = w.vm_metric_series(0, Metric::ReadLatencyMs, 0, HOUR, 60_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 60);
        let other_vm = w.vm_metric_series(1, Metric::ReadLatencyMs, 0, HOUR, 60_000);
        assert_ne!(a, other_vm);
    }

    #[test]
    fn vm_fault_elevates_latency_only_inside_range() {
        let mut w = world();
        w.inject(FaultInjection::new(
            FaultKind::SlowIo { factor: 10.0 },
            FaultTarget::Vm(0),
            30 * 60_000,
            40 * 60_000,
        ));
        let series = w.vm_metric_series(0, Metric::ReadLatencyMs, 0, HOUR, 60_000);
        for &(t, v) in &series {
            if (30 * 60_000..40 * 60_000).contains(&t) {
                assert!(v > 10.0, "inside fault at {t}: {v}");
            } else {
                assert!(v < 5.0, "outside fault at {t}: {v}");
            }
        }
    }

    #[test]
    fn nc_fault_hits_all_hosted_vms() {
        let mut w = world();
        w.inject(FaultInjection::new(FaultKind::NcDown, FaultTarget::Nc(0), 0, HOUR));
        let on_nc0: Vec<u64> = w.fleet.vms_on(0).to_vec();
        assert!(!on_nc0.is_empty());
        for vm in &on_nc0 {
            let hb = w.vm_metric_series(*vm, Metric::Heartbeat, 0, HOUR, 60_000);
            assert!(hb.iter().all(|&(_, v)| v == 0.0));
        }
        // A VM on another NC is unaffected.
        let other = w.fleet.vms_on(1)[0];
        let hb = w.vm_metric_series(other, Metric::Heartbeat, 0, HOUR, 60_000);
        assert!(hb.iter().all(|&(_, v)| v == 1.0));
    }

    #[test]
    fn az_fault_scopes_by_zone() {
        let mut w = world();
        let azs = w.az_names();
        assert_eq!(azs.len(), 4);
        w.inject(FaultInjection::new(FaultKind::VmDown, FaultTarget::Az(0), 0, HOUR));
        for vm in w.fleet.vms() {
            let in_az0 = w.fleet.host_of(vm.id).unwrap().az == azs[0];
            let hb = w.vm_metric_series(vm.id, Metric::Heartbeat, 0, HOUR, 30 * 60_000);
            let down = hb.iter().all(|&(_, v)| v == 0.0);
            assert_eq!(down, in_az0, "vm {}", vm.id);
        }
    }

    #[test]
    fn nic_flapping_emits_log_lines() {
        let mut w = world();
        w.inject(FaultInjection::new(
            FaultKind::NicFlapping,
            FaultTarget::Nc(1),
            0,
            10 * 60_000,
        ));
        let lines = w.log_lines(0, HOUR);
        assert!(!lines.is_empty());
        assert!(lines.iter().all(|l| l.text.contains("NIC Link is Down")));
        assert!(lines.iter().all(|l| l.nc == Some(1)));
        // Roughly one per minute of fault activity.
        assert!((8..=10).contains(&lines.len()), "{}", lines.len());
    }

    #[test]
    fn ddos_markers_at_boundaries() {
        let mut w = world();
        w.inject(FaultInjection::new(
            FaultKind::DdosBlackhole,
            FaultTarget::Vm(2),
            10 * 60_000,
            50 * 60_000,
        ));
        let lines = w.log_lines(0, HOUR);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].text, "ddos_blackhole_add");
        assert_eq!(lines[0].time, 10 * 60_000);
        assert_eq!(lines[1].text, "ddos_blackhole_del");
        assert_eq!(lines[1].time, 50 * 60_000);
        assert_eq!(lines[0].vm, Some(2));
    }

    #[test]
    fn control_ops_fail_during_outage() {
        let mut w = world();
        w.inject(FaultInjection::new(
            FaultKind::ControlPlaneOutage,
            FaultTarget::Global,
            0,
            HOUR,
        ));
        let during = w.control_ops(0, HOUR, 10 * 60_000);
        assert!(!during.is_empty());
        assert!(during.iter().all(|o| !o.ok), "all ops fail during the outage");
        let after = w.control_ops(HOUR, 2 * HOUR, 10 * 60_000);
        let fail_rate =
            after.iter().filter(|o| !o.ok).count() as f64 / after.len() as f64;
        assert!(fail_rate < 0.01, "background failure rate {fail_rate}");
    }

    #[test]
    fn power_zero_bug_on_nc_series() {
        let mut w = world();
        w.inject(FaultInjection::new(
            FaultKind::PowerZeroBug,
            FaultTarget::Nc(0),
            0,
            HOUR,
        ));
        let p = w.nc_metric_series(0, Metric::PowerWatts, 0, HOUR, 15 * 60_000);
        assert!(p.iter().all(|&(_, v)| v == 0.0));
        let healthy = w.nc_metric_series(1, Metric::PowerWatts, 0, HOUR, 15 * 60_000);
        assert!(healthy.iter().all(|&(_, v)| v > 100.0));
    }

    #[test]
    fn chaos_plan_feeds_events_through_the_world() {
        let mut w = world();
        assert!(w.chaos().is_none());
        assert!(w.chaos_events(0, HOUR).is_empty());
        let cfg = ChaosConfig::light(99);
        w.set_chaos(Some(cfg));
        let batch = w.chaos_events(0, HOUR);
        assert_eq!(batch.len(), cfg.total());
        assert_eq!(batch, w.chaos_events(0, HOUR), "deterministic per window");
        assert!(batch.iter().all(|e| w.fleet.vm(e.vm).is_some()));
        w.set_chaos(None);
        assert!(w.chaos_events(0, HOUR).is_empty());
    }

    #[test]
    fn inject_scope_expands_to_hosts() {
        use crate::topology::Scope;
        let mut w = world();
        // 2 regions × 2 AZs × 1 cluster × 2 NCs: a region holds 4 NCs.
        let n = w.inject_scope(FaultKind::NcDown, &Scope::Region("r1".into()), 0, HOUR);
        assert_eq!(n, 4);
        assert_eq!(w.faults().len(), 4);
        assert!(w
            .faults()
            .iter()
            .all(|f| matches!(f.target, FaultTarget::Nc(_)) && f.kind == FaultKind::NcDown));
        // Every VM in the region is down; every VM outside is healthy.
        for vm in w.fleet.vms() {
            let in_r1 = w.fleet.host_of(vm.id).unwrap().region == "r1";
            let hb = w.vm_metric_series(vm.id, Metric::Heartbeat, 0, HOUR, 30 * 60_000);
            assert_eq!(hb.iter().all(|&(_, v)| v == 0.0), in_r1, "vm {}", vm.id);
        }
    }

    #[test]
    fn inject_scope_handles_vm_cluster_and_unknown() {
        use crate::topology::Scope;
        let mut w = world();
        assert_eq!(w.inject_scope(FaultKind::VmDown, &Scope::Vm(3), 0, HOUR), 1);
        assert_eq!(w.faults()[0].target, FaultTarget::Vm(3));
        let cluster = w.fleet.cluster_names()[0].clone();
        let n = w.inject_scope(
            FaultKind::PacketLoss { rate: 0.5 },
            &Scope::Cluster(cluster),
            0,
            HOUR,
        );
        assert_eq!(n, 2, "a cluster holds 2 NCs in this fleet");
        assert_eq!(w.inject_scope(FaultKind::VmDown, &Scope::Vm(9999), 0, HOUR), 0);
        assert_eq!(
            w.inject_scope(FaultKind::VmDown, &Scope::Region("nope".into()), 0, HOUR),
            0
        );
        assert_eq!(w.faults().len(), 3);
    }

    #[test]
    fn ground_truth_reports_injections() {
        let mut w = world();
        w.inject(FaultInjection::new(
            FaultKind::SlowIo { factor: 4.0 },
            FaultTarget::Vm(3),
            0,
            HOUR,
        ));
        w.inject(FaultInjection::new(
            FaultKind::ControlPlaneOutage,
            FaultTarget::Global,
            0,
            HOUR,
        ));
        let gt = w.ground_truth_vm(3);
        assert_eq!(gt.len(), 2);
        assert!(gt.iter().any(|(c, _)| *c == DamageCategory::Performance));
        assert!(gt.iter().any(|(c, _)| *c == DamageCategory::ControlPlane));
        // Another VM sees only the global fault.
        assert_eq!(w.ground_truth_vm(0).len(), 1);
    }
}
