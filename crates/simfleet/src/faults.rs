//! Injectable faults with ground truth.
//!
//! Every fault knows which stability category it damages (per the paper's
//! Definition 1), which metrics it distorts, and which log lines it emits.
//! Experiments assert CDI movements against these ground-truth damage
//! intervals.

use serde::{Deserialize, Serialize};

use crate::topology::{NcId, VmId};

/// Milliseconds-based time range (mirrors `cdi_core::TimeRange`; kept local
/// so simfleet does not depend on the metric crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRange {
    /// Inclusive start (ms).
    pub start: i64,
    /// Exclusive end (ms).
    pub end: i64,
}

impl SimRange {
    /// Construct; start must not exceed end.
    pub fn new(start: i64, end: i64) -> Self {
        debug_assert!(start <= end);
        SimRange { start, end }
    }

    /// Whether `t` lies in `[start, end)`.
    pub fn contains(&self, t: i64) -> bool {
        t >= self.start && t < self.end
    }

    /// Whether two ranges overlap.
    pub fn overlaps(&self, other: &SimRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Target of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// A single VM.
    Vm(VmId),
    /// A whole NC (affects every VM on it).
    Nc(NcId),
    /// A whole availability zone by name index (affects all VMs there).
    Az(u32),
    /// The entire fleet (e.g. a regional control-plane outage).
    Global,
}

/// The fault library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Cloud-disk IO latency inflated by the given factor.
    SlowIo {
        /// Latency multiplier (> 1).
        factor: f64,
    },
    /// Network packet loss at the given rate (0..1).
    PacketLoss {
        /// Loss fraction.
        rate: f64,
    },
    /// NIC link flapping: emits `eth0 NIC Link is Down` log lines and
    /// degrades both latency and loss (Example 1 of the paper).
    NicFlapping,
    /// CPU contention from core-allocation overlap (Case 5's hybrid bug).
    CpuContention {
        /// Extra steal-time fraction (0..1).
        steal: f64,
    },
    /// GPU dropped off the bus: severe compute loss.
    GpuDrop,
    /// VM crashed or stalled: fully unavailable.
    VmDown,
    /// NC down: every hosted VM unavailable.
    NcDown,
    /// Power-telemetry collector bug: power metric reads zero (Case 7).
    PowerZeroBug,
    /// Scheduler resource-data corruption: new VMs over-commit cores and the
    /// overflow VM suffers allocation failure (Case 6).
    SchedulerDataCorruption,
    /// DDoS blackholing: traffic nulled between add/del markers (stateful
    /// event source, Example 2).
    DdosBlackhole,
    /// Control-plane outage: start/stop/release/resize API calls fail
    /// (Case 2 / the 2025-01-07 incident of Fig. 5).
    ControlPlaneOutage,
    /// Loss of monitoring metrics (a control-plane symptom of Case 2).
    MetricsLoss,
}

/// Which stability category a fault damages (ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DamageCategory {
    /// Continuity broken: VM down.
    Unavailability,
    /// Consistency broken: VM degraded.
    Performance,
    /// Manageability broken: control operations fail.
    ControlPlane,
}

impl FaultKind {
    /// The category this fault damages.
    pub fn category(&self) -> DamageCategory {
        match self {
            FaultKind::VmDown | FaultKind::NcDown | FaultKind::DdosBlackhole => {
                DamageCategory::Unavailability
            }
            FaultKind::SlowIo { .. }
            | FaultKind::PacketLoss { .. }
            | FaultKind::NicFlapping
            | FaultKind::CpuContention { .. }
            | FaultKind::GpuDrop
            | FaultKind::PowerZeroBug
            | FaultKind::SchedulerDataCorruption => DamageCategory::Performance,
            FaultKind::ControlPlaneOutage | FaultKind::MetricsLoss => {
                DamageCategory::ControlPlane
            }
        }
    }

    /// Short stable name used in logs and tickets.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::SlowIo { .. } => "slow_io",
            FaultKind::PacketLoss { .. } => "packet_loss",
            FaultKind::NicFlapping => "nic_flapping",
            FaultKind::CpuContention { .. } => "cpu_contention",
            FaultKind::GpuDrop => "gpu_drop",
            FaultKind::VmDown => "vm_down",
            FaultKind::NcDown => "nc_down",
            FaultKind::PowerZeroBug => "power_zero_bug",
            FaultKind::SchedulerDataCorruption => "scheduler_data_corruption",
            FaultKind::DdosBlackhole => "ddos_blackhole",
            FaultKind::ControlPlaneOutage => "control_plane_outage",
            FaultKind::MetricsLoss => "metrics_loss",
        }
    }
}

/// One injected fault: what, where, when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjection {
    /// The fault.
    pub kind: FaultKind,
    /// Where it strikes.
    pub target: FaultTarget,
    /// When it is active.
    pub range: SimRange,
}

impl FaultInjection {
    /// Convenience constructor.
    pub fn new(kind: FaultKind, target: FaultTarget, start: i64, end: i64) -> Self {
        FaultInjection { kind, target, range: SimRange::new(start, end) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_paper_definition() {
        assert_eq!(FaultKind::VmDown.category(), DamageCategory::Unavailability);
        assert_eq!(FaultKind::NcDown.category(), DamageCategory::Unavailability);
        assert_eq!(FaultKind::DdosBlackhole.category(), DamageCategory::Unavailability);
        assert_eq!(FaultKind::SlowIo { factor: 5.0 }.category(), DamageCategory::Performance);
        assert_eq!(FaultKind::GpuDrop.category(), DamageCategory::Performance);
        assert_eq!(
            FaultKind::ControlPlaneOutage.category(),
            DamageCategory::ControlPlane
        );
        assert_eq!(FaultKind::MetricsLoss.category(), DamageCategory::ControlPlane);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FaultKind::SlowIo { factor: 2.0 }.name(), "slow_io");
        assert_eq!(FaultKind::SchedulerDataCorruption.name(), "scheduler_data_corruption");
    }

    #[test]
    fn ranges_behave() {
        let r = SimRange::new(10, 20);
        assert!(r.contains(10));
        assert!(!r.contains(20));
        assert!(r.overlaps(&SimRange::new(15, 30)));
        assert!(!r.overlaps(&SimRange::new(20, 30)));
    }

    #[test]
    fn injection_constructor() {
        let f = FaultInjection::new(FaultKind::VmDown, FaultTarget::Vm(3), 0, 100);
        assert_eq!(f.range, SimRange::new(0, 100));
        assert_eq!(f.target, FaultTarget::Vm(3));
    }
}
