//! Offline stand-in for `serde_derive`: hand-rolled parsing of the derive
//! input (no `syn`/`quote`), generating impls of the stub `serde` traits.
//!
//! Supported shapes — the ones this workspace actually derives on:
//! structs with named fields, unit structs, tuple structs, and enums whose
//! variants are unit, newtype, tuple, or struct-like. Generics and
//! `#[serde(...)]` attributes are intentionally unsupported; deriving on
//! such a type fails loudly at compile time rather than silently
//! mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::json::Value::Object(::std::vec![{}])",
                pairs.join(", ")
            )
        }
        Shape::TupleStruct(n) => {
            if *n == 1 {
                "::serde::Serialize::to_json_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                    .collect();
                format!(
                    "::serde::json::Value::Array(::std::vec![{}])",
                    items.join(", ")
                )
            }
        }
        Shape::UnitStruct => "::serde::json::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_arm(&item.name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn to_json_value(&self) -> ::serde::json::Value {{ {} }}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(__v.field(\"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({} {{ {} }})",
                item.name,
                inits.join(", ")
            )
        }
        Shape::TupleStruct(n) => {
            if *n == 1 {
                format!(
                    "::std::result::Result::Ok({}(\
                     ::serde::Deserialize::from_json_value(__v)?))",
                    item.name
                )
            } else {
                let inits: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_json_value(\
                             __items.get({i}).ok_or_else(|| \
                             ::serde::json::Error::msg(\"tuple struct arity\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "match __v {{ ::serde::json::Value::Array(__items) => \
                     ::std::result::Result::Ok({}({})), \
                     __other => ::std::result::Result::Err(\
                     ::serde::json::Error::msg(\
                     format!(\"expected array, got {{__other:?}}\"))) }}",
                    item.name,
                    inits.join(", ")
                )
            }
        }
        Shape::UnitStruct => {
            format!("::std::result::Result::Ok({})", item.name)
        }
        Shape::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {} {{\n\
         fn from_json_value(__v: &::serde::json::Value) \
         -> ::std::result::Result<Self, ::serde::json::Error> {{ {} }}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------------

fn serialize_arm(name: &str, v: &Variant) -> String {
    match &v.fields {
        VariantFields::Unit => format!(
            "{name}::{v} => ::serde::json::Value::Str(\
             ::std::string::String::from(\"{v}\")),",
            v = v.name
        ),
        VariantFields::Tuple(1) => format!(
            "{name}::{v}(__f0) => ::serde::json::Value::Object(::std::vec![(\
             ::std::string::String::from(\"{v}\"), \
             ::serde::Serialize::to_json_value(__f0))]),",
            v = v.name
        ),
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json_value(__f{i})"))
                .collect();
            format!(
                "{name}::{v}({binds}) => ::serde::json::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{v}\"), \
                 ::serde::json::Value::Array(::std::vec![{items}]))]),",
                v = v.name,
                binds = binds.join(", "),
                items = items.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let binds = fields.join(", ");
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{v} {{ {binds} }} => ::serde::json::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{v}\"), \
                 ::serde::json::Value::Object(::std::vec![{pairs}]))]),",
                v = v.name,
                pairs = pairs.join(", ")
            )
        }
    }
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as bare strings; data variants as single-key
    // objects — serde's externally-tagged representation.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| {
            format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),",
                v = v.name
            )
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| match &v.fields {
            VariantFields::Unit => None,
            VariantFields::Tuple(1) => Some(format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                 ::serde::Deserialize::from_json_value(__inner)?)),",
                v = v.name
            )),
            VariantFields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_json_value(\
                             __items.get({i}).ok_or_else(|| \
                             ::serde::json::Error::msg(\"variant arity\"))?)?"
                        )
                    })
                    .collect();
                Some(format!(
                    "\"{v}\" => match __inner {{ \
                     ::serde::json::Value::Array(__items) => \
                     ::std::result::Result::Ok({name}::{v}({inits})), \
                     __other => ::std::result::Result::Err(\
                     ::serde::json::Error::msg(\"expected array variant data\")) }},",
                    v = v.name,
                    inits = inits.join(", ")
                ))
            }
            VariantFields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_json_value(\
                             __inner.field(\"{f}\")?)?"
                        )
                    })
                    .collect();
                Some(format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),",
                    v = v.name,
                    inits = inits.join(", ")
                ))
            }
        })
        .collect();
    format!(
        "match __v {{\n\
         ::serde::json::Value::Str(__s) => match __s.as_str() {{\n\
         {unit}\n\
         __other => ::std::result::Result::Err(::serde::json::Error::msg(\
         format!(\"unknown variant '{{__other}}' of {name}\"))),\n\
         }},\n\
         ::serde::json::Value::Object(__fields) if __fields.len() == 1 => {{\n\
         let (__tag, __inner) = &__fields[0];\n\
         match __tag.as_str() {{\n\
         {data}\n\
         __other => ::std::result::Result::Err(::serde::json::Error::msg(\
         format!(\"unknown variant '{{__other}}' of {name}\"))),\n\
         }}\n\
         }},\n\
         __other => ::std::result::Result::Err(::serde::json::Error::msg(\
         format!(\"cannot deserialize {name} from {{__other:?}}\"))),\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n"),
    )
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if *id.to_string() == *"pub" => {
                i += 1;
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("stub serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("stub serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "stub serde_derive: generic type `{name}` unsupported — \
                 extend tools/offline-stubs/serde_derive if needed"
            );
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("stub serde_derive: bad struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("stub serde_derive: bad enum body {other:?}"),
        },
        other => panic!("stub serde_derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

/// Extract field names from `a: T, pub b: U, ...`, tolerating commas inside
/// generic arguments (`HashMap<K, V>`): a field name is an ident directly
/// followed by `:` at angle-bracket depth 0, directly after a `,` (or the
/// start), skipping attributes and `pub`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut angle: i32 = 0;
    let mut at_field_start = true;
    let mut i = 0;
    let mut prev_dash = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == '#' && angle == 0 {
                    // Field attribute (`#[doc = ...]` etc.): skip it whole,
                    // leaving the field-start flag untouched.
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if g.delimiter() == Delimiter::Bracket {
                            i += 2;
                            prev_dash = false;
                            continue;
                        }
                    }
                }
                if c == '<' {
                    angle += 1;
                } else if c == '>' {
                    if prev_dash {
                        // `->` inside a type: not an angle close.
                    } else {
                        angle -= 1;
                    }
                } else if c == ',' && angle == 0 {
                    at_field_start = true;
                }
                prev_dash = c == '-';
                i += 1;
                continue;
            }
            TokenTree::Ident(id) if at_field_start && angle == 0 => {
                let word = id.to_string();
                if word == "pub" {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                    prev_dash = false;
                    continue;
                }
                if let Some(TokenTree::Punct(p)) = tokens.get(i + 1) {
                    if p.as_char() == ':' {
                        fields.push(word);
                        at_field_start = false;
                        i += 2;
                        prev_dash = false;
                        continue;
                    }
                }
                at_field_start = false;
            }
            TokenTree::Group(_) | TokenTree::Ident(_) | TokenTree::Literal(_) => {
                at_field_start = false;
            }
        }
        prev_dash = false;
        i += 1;
    }
    fields
}

/// Count fields of a tuple struct/variant: top-level commas + 1 (angle
/// depth tracked as above).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle: i32 = 0;
    let mut commas = 0;
    let mut prev_dash = false;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        if let TokenTree::Punct(p) = t {
            let c = p.as_char();
            if c == '<' {
                angle += 1;
            } else if c == '>' && !prev_dash {
                angle -= 1;
            } else if c == ',' && angle == 0 {
                commas += 1;
                trailing_comma = true;
            }
            prev_dash = c == '-';
        } else {
            prev_dash = false;
        }
    }
    commas + 1 - usize::from(trailing_comma)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                let fields = match tokens.get(i + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 2;
                        VariantFields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g))
                        if g.delimiter() == Delimiter::Parenthesis =>
                    {
                        i += 2;
                        VariantFields::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => {
                        i += 1;
                        VariantFields::Unit
                    }
                };
                variants.push(Variant { name, fields });
            }
            other => panic!("stub serde_derive: unexpected token in enum: {other:?}"),
        }
    }
    variants
}
