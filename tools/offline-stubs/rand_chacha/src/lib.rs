//! Offline stand-in for `rand_chacha`: a from-scratch ChaCha8 generator
//! producing the same word stream as the real crate (32-byte key, stream 0,
//! 64-byte blocks emitted in counter order, low u32 first in `next_u64`).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded deterministically.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "refill".
    pos: usize,
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *k = u32::from_le_bytes(bytes);
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], pos: 16 }
    }
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let start = s;
        for _ in 0..4 {
            // Column round.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (out, (w, init)) in self.buf.iter_mut().zip(s.iter().zip(start.iter())) {
            *out = w.wrapping_add(*init);
        }
        self.counter = self.counter.wrapping_add(1);
        self.pos = 0;
    }
}

fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.pos >= 16 {
            self.refill();
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
