//! The concrete JSON tree the stub serde routes through, plus its text
//! renderer and parser. `serde_json` (stub) re-exports these.

use std::fmt;

/// A JSON value. `Object` preserves insertion order, matching real
/// serde_json's struct-field output order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part (serialized without `.0` only when
    /// it originated from an integer type).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Look up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field '{name}'"))),
            other => Err(Error::msg(format!(
                "expected object with field '{name}', got {other:?}"
            ))),
        }
    }

    /// Render compactly (`{"a":1}`).
    pub fn render_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => out.push_str(&format_f64(*f)),
            Value::Str(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Render with 2-space indentation, like `serde_json::to_string_pretty`.
    pub fn render_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad_in);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.render_compact(out),
        }
    }
}

/// serde_json-compatible float rendering for the common cases: integral
/// floats keep a trailing `.0`; everything else uses Rust's shortest
/// round-trip formatting.
fn format_f64(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e16 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::msg("expected ',' or '}'")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = text
                        .chars()
                        .next()
                        .ok_or_else(|| Error::msg("unterminated string"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::msg(format!("bad float '{text}': {e}")))
        } else {
            text.parse::<i64>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| Error::msg(format!("bad number '{text}': {e}")))
            })
        }
    }
}
