//! Offline API-subset stand-in for `serde` (no-network build harness).
//!
//! Instead of serde's `Serializer`/`Deserializer` visitor machinery, this
//! stub routes everything through a concrete JSON value tree
//! ([`json::Value`]). The derive macros (`serde_derive` stub) generate
//! impls of the two traits below; `serde_json` (stub) renders/parses the
//! tree. The visible surface (`serde::Serialize`, `serde::Deserialize`,
//! `serde::de::DeserializeOwned`, `#[derive(Serialize, Deserialize)]`)
//! matches real serde for the subset this workspace uses, so the same
//! source builds against real serde when a registry is available.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::{Error, Value};

/// Serialize into the stub JSON tree (stand-in for `serde::Serialize`).
pub trait Serialize {
    /// Convert `self` to a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Deserialize from the stub JSON tree (stand-in for `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {
    /// Build `Self` from a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

/// `serde::de` module subset.
pub mod de {
    pub use crate::Deserialize;

    /// Owned-deserialization marker, as in real serde.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

/// `serde::ser` module subset.
pub mod ser {
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::msg(format!("expected float, got {other:?}"))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for &'static str {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            // The stub has no borrowed-deserialization plumbing; tests that
            // round-trip `&'static str` fields get a leaked copy instead.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<'de> Deserialize<'de> for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().unwrap_or('\0'))
            }
            other => Err(Error::msg(format!("expected char, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        Ok(($($t::from_json_value(
                            items.get($n).ok_or_else(|| {
                                Error::msg("tuple arity mismatch")
                            })?,
                        )?,)+))
                    }
                    other => Err(Error::msg(format!(
                        "expected array for tuple, got {other:?}"
                    ))),
                }
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Map keys serde_json can represent as JSON object keys: strings, and
/// integers (rendered in decimal, as real serde_json does).
pub trait JsonKey: Sized {
    /// Render the key.
    fn to_key_string(&self) -> String;
    /// Parse the key back.
    fn from_key_string(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key_string(&self) -> String {
        self.clone()
    }
    fn from_key_string(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_key_impls {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key_string(&self) -> String {
                self.to_string()
            }
            fn from_key_string(s: &str) -> Result<Self, Error> {
                s.parse::<$t>()
                    .map_err(|e| Error::msg(format!("bad integer key '{s}': {e}")))
            }
        }
    )*};
}

int_key_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: JsonKey + Ord, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Sorted keys: the stub is deterministic where real serde_json
        // would leak hasher order.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key_string(), v.to_json_value()))
                .collect(),
        )
    }
}
impl<'de, K, V> Deserialize<'de> for std::collections::HashMap<K, V>
where
    K: JsonKey + Eq + std::hash::Hash,
    V: Deserialize<'de>,
{
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((K::from_key_string(k)?, V::from_json_value(val)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: JsonKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, val)| (k.to_key_string(), val.to_json_value()))
                .collect(),
        )
    }
}
impl<'de, K, V> Deserialize<'de> for std::collections::BTreeMap<K, V>
where
    K: JsonKey + Ord,
    V: Deserialize<'de>,
{
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((K::from_key_string(k)?, V::from_json_value(val)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::HashSet<T> {
    fn to_json_value(&self) -> Value {
        // Sorted elements: deterministic where real serde_json would leak
        // hasher order.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_json_value).collect())
    }
}
impl<'de, T: Deserialize<'de> + Ord + std::hash::Hash> Deserialize<'de>
    for std::collections::HashSet<T>
{
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
