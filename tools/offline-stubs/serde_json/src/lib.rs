//! Offline API-subset stand-in for `serde_json`, backed by the stub
//! serde's [`serde::json::Value`] tree.

use std::io::{Read, Write};

pub use serde::json::{Error, Value};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Build a typed value from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_json_value().render_compact(&mut out);
    Ok(out)
}

/// Serialize to a pretty (2-space-indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.to_json_value().render_pretty(&mut out, 0);
    Ok(out)
}

/// Parse a typed value from a JSON string.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    T::from_json_value(&serde::json::parse(text)?)
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::msg(format!("io: {e}")))
}

/// Deserialize a typed value from a reader.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::msg(format!("io: {e}")))?;
    from_str(&text)
}
