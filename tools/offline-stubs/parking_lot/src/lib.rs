//! Offline stand-in for `parking_lot`: std locks with parking_lot's
//! non-poisoning API (the subset this workspace uses).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Non-poisoning reader-writer lock over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquire a shared read guard (ignores poisoning, like parking_lot).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard (ignores poisoning).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning mutex over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock (ignores poisoning, like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
