//! Offline stand-in for `criterion`: same macro/API surface, with a small
//! wall-clock measurement loop instead of criterion's statistics engine.
//!
//! Behavior:
//! - default (`cargo bench`): warm up briefly, then time `sample_size`
//!   batches and report the median ns/iter plus throughput when set.
//! - `--test` on the command line (criterion's quick mode, used by the CI
//!   smoke job): run every benchmark closure exactly once and report `ok`.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function.into(), parameter) }
    }

    /// Just the parameter, as when the group name already names the function.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// The per-iteration timer handed to benchmark closures.
pub struct Bencher {
    quick: bool,
    iters_per_sample: u64,
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    median_ns: f64,
}

impl Bencher {
    /// Time `f`, storing the median ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            black_box(f());
            self.median_ns = 0.0;
            return;
        }
        // Calibrate: grow the batch until one batch takes >= 1ms, so cheap
        // closures aren't dominated by timer overhead.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(1) || batch >= self.iters_per_sample {
                break;
            }
            batch *= 4;
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples_ns[samples_ns.len() / 2];
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the group's throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set how many timing samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measurement time is accepted for API compatibility and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        let quick = self.criterion.quick;
        let mut b = Bencher {
            quick,
            iters_per_sample: 1 << 20,
            samples: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b);
        report(&full, &b, self.throughput, quick);
        self
    }

    /// Benchmark a closure with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        let quick = self.criterion.quick;
        let mut b = Bencher {
            quick,
            iters_per_sample: 1 << 20,
            samples: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut b, input);
        report(&full, &b, self.throughput, quick);
        self
    }

    /// Finish the group (no-op; reports were emitted eagerly).
    pub fn finish(&mut self) {}
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>, quick: bool) {
    if quick {
        println!("{name}: ok (quick mode)");
        return;
    }
    let per_iter = b.median_ns;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let eps = n as f64 / (per_iter / 1e9);
            println!("{name}: {:.0} ns/iter ({:.3} Melem/s)", per_iter, eps / 1e6);
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let bps = n as f64 / (per_iter / 1e9);
            println!("{name}: {:.0} ns/iter ({:.3} MiB/s)", per_iter, bps / (1024.0 * 1024.0));
        }
        _ => println!("{name}: {per_iter:.0} ns/iter"),
    }
}

/// Accepts both `&str` and `BenchmarkId` where criterion does.
pub trait IntoBenchId {
    /// Render the id segment.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.name
    }
}

/// The benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--test");
        Criterion { quick }
    }
}

impl Criterion {
    /// Accepted for API compatibility; returns self unchanged.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let quick = self.quick;
        let mut b = Bencher { quick, iters_per_sample: 1 << 20, samples: 10, median_ns: 0.0 };
        f(&mut b);
        report(name, &b, None, quick);
        self
    }
}

/// Declare a group of benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark entry point, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
