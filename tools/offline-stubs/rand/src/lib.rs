//! Offline API-subset stand-in for `rand` 0.9 (core traits only — no OS
//! entropy, which the workspace's own stability-lint bans anyway).

/// Low-level uniform-bits generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u32().to_le_bytes();
            let n = (dest.len() - i).min(4);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

/// Distribution plumbing (subset of `rand::distr`).
pub mod distr {
    use super::RngCore;

    /// Types samplable from the standard uniform distribution.
    pub trait StandardSample: Sized {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // rand 0.9's StandardUniform for f64: 53 mantissa bits.
            let precision = 52 + 1;
            let scale = 1.0 / ((1u64 << precision) as f64);
            scale * ((rng.next_u64() >> (64 - precision)) as f64)
        }
    }

    impl StandardSample for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            let precision = 23 + 1;
            let scale = 1.0 / ((1u32 << precision) as f32);
            scale * ((rng.next_u32() >> (32 - precision)) as f32)
        }
    }

    impl StandardSample for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl StandardSample for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardSample for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }
}

/// User-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution.
    fn random<T: distr::StandardSample>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with rand_core's PCG32-based
    /// expansion (bit-identical to real `SeedableRng::seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let s = *state;
            let xorshifted = (((s >> 18) ^ s) >> 27) as u32;
            let rot = (s >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}
