//! Offline API-subset stand-in for `proptest`.
//!
//! Same macro surface (`proptest!`, `prop_oneof!`, `prop_assert*!`) and
//! strategy combinators as real proptest, minus shrinking: each test runs a
//! fixed number of deterministically-seeded random cases, and a failing
//! case panics with the ordinary assert message. Seeds derive from the test
//! name, so failures reproduce exactly across runs.

use std::collections::BTreeSet;
use std::rc::Rc;

/// Deterministic case generator (splitmix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let this = Rc::new(self);
        BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
    }

    /// Build recursive values: at each of `depth` levels, choose between
    /// the base strategy and `recurse` applied to the level below. The
    /// `_desired_size`/`_expected_branch` tuning knobs of real proptest are
    /// accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = union(vec![(1, base.clone()), (3, deeper)]);
        }
        strat
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of the given value, as in proptest.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed arms (backs `prop_oneof!`).
pub fn union<T: 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
    BoxedStrategy(Rc::new(move |rng| {
        let mut pick = rng.below(total.max(1));
        for (w, arm) in &arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        // Unreachable with nonzero total weight; fall back to the last arm.
        arms[arms.len() - 1].1.generate(rng)
    }))
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as i128) - (self.start as i128);
                if width <= 0 {
                    return self.start;
                }
                let off = (rng.next_u64() as u128 % width as u128) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                if hi <= lo {
                    return *self.start();
                }
                let width = (hi - lo + 1) as u128;
                let off = (rng.next_u64() as u128 % width) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let u = rng.unit_f64() as $t;
                self.start() + u * (self.end() - self.start())
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

/// `&str` as a regex strategy, as in proptest. Supports the subset this
/// workspace's tests use: literal characters, `.`, character classes with
/// ranges (`[a-z_]`), and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
/// (star/plus bounded at 8 repeats).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = *lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                let i = rng.below(chars.len() as u64) as usize;
                out.push(chars[i]);
            }
        }
        out
    }
}

/// Parse a pattern into (alternatives, min-reps, max-reps) atoms.
fn parse_regex(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    const DOT: &str = "abcdefghijklmnopqrstuvwxyz0123456789_-";
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<(Vec<char>, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("stub proptest: unclosed '[' in {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        for c in a..=b {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '.' => {
                i += 1;
                DOT.chars().collect()
            }
            '\\' => {
                i += 2;
                vec![*chars.get(i - 1).unwrap_or(&'\\')]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("stub proptest: unclosed '{{' in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().unwrap_or(0),
                        n.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        if !set.is_empty() {
            atoms.push((set, lo, hi.max(lo)));
        }
    }
    atoms
}

macro_rules! tuple_strategies {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// Modules mirrored from proptest
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::{BTreeSet, Strategy, TestRng};

    /// Element-count specification: an exact count or a range of counts.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: r.end().saturating_add(1) }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let width = (self.hi - self.lo).max(1) as u64;
            self.lo + rng.below(width) as usize
        }
    }

    /// `Vec` of generated elements with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of generated elements with a size in `size` (best-effort
    /// when the element domain is smaller than the requested size).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// Strategy produced by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < n && attempts < n * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Sampling strategies (`proptest::sample` subset).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniformly select one of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        Select { items }
    }

    /// Strategy produced by [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

/// The glob-import surface, as `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy,
    };
}

/// Number of cases each property runs.
pub const CASES: u64 = 64;

/// Drive `case` through [`CASES`] deterministic seeds derived from `name`.
pub fn run_cases<F: FnMut(&mut TestRng)>(name: &str, mut case: F) {
    // FNV-1a over the test name, so distinct tests explore distinct seeds.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    for i in 0..CASES {
        let mut rng = TestRng::new(h ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        case(&mut rng);
    }
}

/// Define property tests, as proptest's `proptest!` macro.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                });
            }
        )*
    };
}

/// Weighted/unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::union(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Property assertion (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
